// Tests for the §IV semilink identities — each theorem the paper states is
// verified under its preconditions, and counterexamples are exhibited when
// the preconditions are dropped (showing the conditions are not vacuous).

#include <gtest/gtest.h>

#include "semilink/identities.hpp"
#include "semiring/all.hpp"
#include "util/rng.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::array;
using namespace hyperspace::semilink;

using S = semiring::PlusTimes<double>;
using Arr = AssocArray<S>;

Arr random_array(std::uint64_t seed, int n_entries, const char* const* rows,
                 const char* const* cols, int nk) {
  util::Xoshiro256 rng(seed);
  std::vector<Key> k1, k2;
  std::vector<double> v;
  for (int i = 0; i < n_entries; ++i) {
    k1.emplace_back(rows[rng.bounded(static_cast<std::uint64_t>(nk))]);
    k2.emplace_back(cols[rng.bounded(static_cast<std::uint64_t>(nk))]);
    v.push_back(static_cast<double>(1 + rng.bounded(4)));
  }
  return Arr(k1, k2, v);
}

const char* kRows[] = {"r1", "r2", "r3", "r4", "r5"};
const char* kCols[] = {"c1", "c2", "c3", "c4", "c5"};

TEST(SemilinkIdentities, OneAndEyeInteract) {
  // 1 ⊗ I = I ⊗ 1 = I  and  1 ⊕.⊗ I = I ⊕.⊗ 1 = 1.
  Semilink<S> link(KeySet{"a", "b", "c"});
  EXPECT_TRUE(identities_interact(link));
}

TEST(SemilinkIdentities, OneAndEyeInteractOverMaxPlus) {
  using MP = semiring::MaxPlus<double>;
  Semilink<MP> link(KeySet{"a", "b", "c", "d"});
  EXPECT_TRUE(identities_interact(link));
}

TEST(SemilinkIdentities, OneAndEyeInteractOverUnionIntersect) {
  // The database semilink (A, ∪, ∩, ∪.∩, ∅, 1, I) — 1's entries are P(V).
  using U = semiring::UnionIntersect;
  Semilink<U> link(KeySet{"k1", "k2", "k3"});
  EXPECT_TRUE(identities_interact(link));
}

TEST(SemilinkIdentities, ZeroArrayBehaviour) {
  Semilink<S> link(KeySet{"a", "b"});
  const auto zero = link.zero();
  EXPECT_TRUE(zero.empty());
  const auto one = link.one();
  EXPECT_EQ(link.add(one, zero), one);       // A ⊕ 0 = A
  EXPECT_TRUE(link.mult(one, zero).empty()); // A ⊗ 0 = 0
  EXPECT_TRUE(link.mtimes(one, zero).empty());
}

TEST(SemilinkIdentities, PermutationActsAsElementwiseIdentity) {
  // |A|₀ = P ⇒ A ⊗ P = P ⊗ A = A.
  const auto a = Arr::from_entries({{Key("r1"), Key("c2"), 3.0},
                                    {Key("r2"), Key("c1"), 5.0},
                                    {Key("r3"), Key("c3"), 7.0}});
  ASSERT_TRUE(is_permutation_pattern(a));
  EXPECT_TRUE(permutation_elementwise_identity(a));
}

TEST(SemilinkIdentities, NonPermutationBreaksElementwiseIdentity) {
  // Counterexample: two entries in one row — |A|₀ is not a permutation and
  // A ⊗ |A|₀ = A only because |A|₀ is all ones on A's pattern; the paper's
  // claim is about *permutations* specifically. Verify the predicate
  // classifies correctly.
  const auto a = Arr::from_entries({{Key("r1"), Key("c1"), 3.0},
                                    {Key("r1"), Key("c2"), 5.0}});
  EXPECT_FALSE(is_permutation_pattern(a));
}

TEST(SemilinkIdentities, PermutationPatternDetection) {
  const auto diag = Arr::identity(KeySet{"a", "b", "c"});
  EXPECT_TRUE(is_permutation_pattern(diag));
  const auto col_dup = Arr::from_entries({{Key("r1"), Key("c1"), 1.0},
                                          {Key("r2"), Key("c1"), 1.0}});
  EXPECT_FALSE(is_permutation_pattern(col_dup));
}

TEST(SemilinkIdentities, OnesProjectsRows) {
  // C = A ⊕.⊗ 1 ⇒ C(k1, :) = ⨁_{k2} A(k1, k2).
  const auto a = random_array(21, 18, kRows, kCols, 5);
  EXPECT_TRUE(ones_projects_rows(a));
}

TEST(SemilinkIdentities, OnesProjectsCols) {
  const auto a = random_array(22, 18, kRows, kCols, 5);
  EXPECT_TRUE(ones_projects_cols(a));
}

TEST(SemilinkIdentities, OnesProjectsOverMaxPlus) {
  using MP = semiring::MaxPlus<double>;
  AssocArray<MP> a(std::vector<Key>{"r1", "r1", "r2"},
                   std::vector<Key>{"c1", "c2", "c1"},
                   std::vector<double>{3.0, 8.0, 2.0});
  EXPECT_TRUE(ones_projects_rows(a));
  EXPECT_TRUE(ones_projects_cols(a));
}

TEST(SemilinkIdentities, ConditionalDistributivityHolds) {
  // A1, A2 share a permutation pattern; A = A1 ⊗ A2.
  const auto a1 = Arr::from_entries({{Key("r1"), Key("c2"), 2.0},
                                     {Key("r2"), Key("c3"), 3.0},
                                     {Key("r3"), Key("c1"), 4.0}});
  const auto a2 = Arr::from_entries({{Key("r1"), Key("c2"), 5.0},
                                     {Key("r2"), Key("c3"), 6.0},
                                     {Key("r3"), Key("c1"), 7.0}});
  // B and C live on the permutation's column keys.
  const char* inner[] = {"c1", "c2", "c3"};
  const char* outer[] = {"z1", "z2", "z3"};
  const auto b = random_array(31, 7, inner, outer, 3);
  const auto c = random_array(32, 7, inner, outer, 3);
  EXPECT_TRUE(conditional_distributivity(a1, a2, b, c));
}

TEST(SemilinkIdentities, ConditionalDistributivityNeedsPermutation) {
  // Drop the permutation precondition: checker reports false.
  const auto bad = Arr::from_entries({{Key("r1"), Key("c1"), 1.0},
                                      {Key("r1"), Key("c2"), 1.0}});
  const auto b = random_array(33, 7, kCols, kRows, 3);
  EXPECT_FALSE(conditional_distributivity(bad, bad, b, b));
}

TEST(SemilinkIdentities, ConditionalDistributivityFailsForGeneralArrays) {
  // The identity itself (not just the checker) fails without the
  // permutation hypothesis: exhibit a counterexample evaluated directly.
  const auto a = Arr::from_entries({{Key("r1"), Key("c1"), 2.0},
                                    {Key("r1"), Key("c2"), 3.0}});
  const auto b = Arr::from_entries({{Key("c1"), Key("z1"), 1.0},
                                    {Key("c2"), Key("z1"), 1.0}});
  const auto c = b;
  const auto lhs = mtimes(a, mult(b, c));
  const auto rhs = mult(mtimes(a, b), mtimes(a, c));
  EXPECT_NE(lhs, rhs);
}

TEST(SemilinkIdentities, HybridAssociativityWhenAIsOne) {
  const auto b = random_array(41, 12, kRows, kCols, 4);
  EXPECT_TRUE(hybrid_associativity_trivial(b, /*a_is_one=*/true));
}

TEST(SemilinkIdentities, HybridAssociativityWhenCIsEye) {
  const auto b = random_array(42, 12, kRows, kRows, 4);
  EXPECT_TRUE(hybrid_associativity_trivial(b, /*a_is_one=*/false));
}

TEST(SemilinkIdentities, HybridAssociativityFailsInGeneral) {
  // Outside the trivial cases the law generally breaks: B ⊕.⊗ C lands on
  // A's pattern, but A ⊗ B is empty (patterns of A and B are disjoint), so
  // lhs ≠ 0 = rhs.
  const auto a = Arr::from_entries({{Key("r1"), Key("c1"), 3.0}});
  const auto b = Arr::from_entries({{Key("r1"), Key("k1"), 1.0},
                                    {Key("r1"), Key("k2"), 1.0}});
  const auto c = Arr::from_entries({{Key("k1"), Key("c1"), 1.0},
                                    {Key("k2"), Key("c1"), 1.0}});
  EXPECT_FALSE(hybrid_associativity_holds(a, b, c));
}

TEST(SemilinkIdentities, AnnihilationLeftForm) {
  // row(A) ∩ row(B) = ∅ ⇒ A ⊗ (B ⊕.⊗ C) = 0.
  const auto a = Arr::from_entries({{Key("r1"), Key("c1"), 1.0}});
  const auto b = Arr::from_entries({{Key("r2"), Key("c1"), 1.0}});
  const auto c = Arr::from_entries({{Key("c1"), Key("c2"), 1.0}});
  EXPECT_TRUE(annihilates_left(a, b, c));
}

TEST(SemilinkIdentities, AnnihilationLeftViaInnerKeys) {
  // col(B) ∩ row(C) = ∅ ⇒ B ⊕.⊗ C = 0 ⇒ whole expression 0.
  const auto a = Arr::from_entries({{Key("r1"), Key("c1"), 1.0}});
  const auto b = Arr::from_entries({{Key("r1"), Key("k1"), 1.0}});
  const auto c = Arr::from_entries({{Key("k2"), Key("c1"), 1.0}});
  EXPECT_TRUE(annihilates_left(a, b, c));
}

TEST(SemilinkIdentities, AnnihilationRightForm) {
  // col(A) ∩ col(B) = ∅ ⇒ (A ⊗ B) ⊕.⊗ C = 0.
  const auto a = Arr::from_entries({{Key("r1"), Key("c1"), 1.0}});
  const auto b = Arr::from_entries({{Key("r1"), Key("c2"), 1.0}});
  const auto c = Arr::from_entries({{Key("c1"), Key("z1"), 1.0},
                                    {Key("c2"), Key("z1"), 1.0}});
  EXPECT_TRUE(annihilates_right(a, b, c));
}

TEST(SemilinkIdentities, AnnihilationBothGroupings) {
  // row(A) ∩ row(B) = ∅ ⇒ both groupings give 0 — so the hybrid
  // associativity A ⊗ (B ⊕.⊗ C) = (A ⊗ B) ⊕.⊗ C holds trivially (= 0).
  const auto a = Arr::from_entries({{Key("r1"), Key("c1"), 2.0}});
  const auto b = Arr::from_entries({{Key("r9"), Key("c1"), 3.0}});
  const auto c = Arr::from_entries({{Key("c1"), Key("z1"), 4.0}});
  EXPECT_TRUE(annihilates_both(a, b, c));
  EXPECT_TRUE(hybrid_associativity_holds(a, b, c));
}

// --- The database semilink (A, ∪, ∩, ∪.∩, ∅, 1, I) from §V-B: the §IV
// machinery must hold over set-valued arrays too, since that instantiation
// is what licenses the semilink select rewrite. ---

using U = semiring::UnionIntersect;
using semiring::ValueSet;
using SetArr = AssocArray<U>;

SetArr random_set_array(std::uint64_t seed, int n_entries = 15) {
  util::Xoshiro256 rng(seed);
  std::vector<Key> k1, k2;
  std::vector<ValueSet> v;
  for (int i = 0; i < n_entries; ++i) {
    k1.emplace_back(kRows[rng.bounded(5)]);
    k2.emplace_back(kCols[rng.bounded(5)]);
    v.push_back(ValueSet{static_cast<std::int64_t>(rng.bounded(8)),
                         static_cast<std::int64_t>(rng.bounded(8))});
  }
  return SetArr(k1, k2, v);
}

TEST(SetSemilink, OnesProjectsRowsOverUnionIntersect) {
  // A ∪.∩ 1 unions each row's value sets — the row-mask step of the §V-B
  // select, verified against the direct reduction.
  EXPECT_TRUE(ones_projects_rows(random_set_array(61)));
  EXPECT_TRUE(ones_projects_cols(random_set_array(62)));
}

TEST(SetSemilink, PermutationIdentityOverSets) {
  const auto p = SetArr::from_entries({{Key("r1"), Key("c2"), ValueSet{1, 2}},
                                       {Key("r2"), Key("c1"), ValueSet{3}}});
  ASSERT_TRUE(is_permutation_pattern(p));
  EXPECT_TRUE(permutation_elementwise_identity(p));
}

TEST(SetSemilink, HybridAssociativityTrivialCases) {
  const auto b = random_set_array(63);
  EXPECT_TRUE(hybrid_associativity_trivial(b, /*a_is_one=*/true));
}

TEST(SetSemilink, AnnihilationOverDisjointKeyBlocks) {
  const auto a = SetArr::from_entries({{Key("r1"), Key("c1"), ValueSet{1}}});
  const auto b = SetArr::from_entries({{Key("x1"), Key("c1"), ValueSet{2}}});
  const auto c = SetArr::from_entries({{Key("c1"), Key("z1"), ValueSet{3}}});
  EXPECT_TRUE(annihilates_left(a, b, c));
  EXPECT_TRUE(annihilates_both(a, b, c));
}

TEST(SetSemilink, ConditionalDistributivityOverSets) {
  // Permutation-patterned A1, A2 with set values: ∩ is commutative, so the
  // §IV conditional distributivity carries over verbatim.
  const auto a1 = SetArr::from_entries({{Key("r1"), Key("c1"), ValueSet{1, 2, 3}},
                                        {Key("r2"), Key("c2"), ValueSet{4, 5}}});
  const auto a2 = SetArr::from_entries({{Key("r1"), Key("c1"), ValueSet{2, 3}},
                                        {Key("r2"), Key("c2"), ValueSet{4}}});
  const auto b = SetArr::from_entries({{Key("c1"), Key("z1"), ValueSet{2, 9}},
                                       {Key("c2"), Key("z1"), ValueSet{4}}});
  const auto c = SetArr::from_entries({{Key("c1"), Key("z1"), ValueSet{2}},
                                       {Key("c2"), Key("z2"), ValueSet{4, 7}}});
  EXPECT_TRUE(conditional_distributivity(a1, a2, b, c));
}

TEST(SemilinkIdentities, AnnihilationPreconditionRequired) {
  // With every key-overlap condition violated (all rows/cols intersect),
  // the checker refuses (returns false): the precondition does not hold.
  const auto a = Arr::from_entries({{Key("r1"), Key("c1"), 1.0}});
  const auto b = a;
  const auto c = Arr::from_entries({{Key("c1"), Key("c1"), 1.0}});
  EXPECT_FALSE(annihilates_left(a, b, c));
  EXPECT_FALSE(annihilates_right(a, b, c));
  EXPECT_FALSE(annihilates_both(a, b, c));
}

}  // namespace
