// Property tests: every Table I semiring satisfies every semiring law.
//
// Typed tests sweep the numeric semirings over randomized samples; the
// set-valued ∪.∩ semiring and the Bounded<string> max.min/min.max rows get
// their own samples. This mechanizes the claim of Section II-C that these
// (⊕, ⊗) pairs "obey the distributive property ... [and] exhibit the
// desired properties of a linear system."

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "semiring/all.hpp"
#include "util/rng.hpp"

namespace {

using namespace hyperspace::semiring;
using hyperspace::util::Xoshiro256;

template <typename S>
class NumericSemiringLaws : public ::testing::Test {
 public:
  // Non-negative sample: the common carrier of all Table I numeric rows
  // (max.× and min.× are semirings over R≥0 only). Negative carriers are
  // exercised separately below for the rows that admit them.
  static std::vector<double> sample() {
    Xoshiro256 rng(99);
    std::vector<double> xs = {0.0, 1.0, 2.0, 0.5, S::zero(), S::one()};
    for (int i = 0; i < 8; ++i) xs.push_back(rng.uniform(0.0, 10.0));
    return xs;
  }
};

using NumericSemirings =
    ::testing::Types<PlusTimes<double>, MaxPlus<double>, MinPlus<double>,
                     MaxTimes<double>, MinTimes<double>, MaxMin<double>,
                     MinMax<double>>;
TYPED_TEST_SUITE(NumericSemiringLaws, NumericSemirings);

TYPED_TEST(NumericSemiringLaws, AddCommutative) {
  EXPECT_TRUE(add_commutative<TypeParam>(this->sample()));
}
TYPED_TEST(NumericSemiringLaws, AddAssociative) {
  EXPECT_TRUE(add_associative<TypeParam>(this->sample()));
}
TYPED_TEST(NumericSemiringLaws, MulAssociative) {
  EXPECT_TRUE(mul_associative<TypeParam>(this->sample()));
}
TYPED_TEST(NumericSemiringLaws, AdditiveIdentity) {
  EXPECT_TRUE(additive_identity<TypeParam>(this->sample()));
}
TYPED_TEST(NumericSemiringLaws, MultiplicativeIdentity) {
  EXPECT_TRUE(multiplicative_identity<TypeParam>(this->sample()));
}
TYPED_TEST(NumericSemiringLaws, MultiplicativeAnnihilator) {
  EXPECT_TRUE(multiplicative_annihilator<TypeParam>(this->sample()));
}
TYPED_TEST(NumericSemiringLaws, Distributive) {
  EXPECT_TRUE(distributive<TypeParam>(this->sample()));
}

TEST(NegativeCarriers, LawsHoldWhereTheCarrierAllows) {
  // +.×, max.+, min.+, max.min, min.max are semirings over all of R.
  const std::vector<double> with_neg = {-3.0, -1.0, 0.0, 1.0, 2.5, 7.0};
  EXPECT_TRUE(all_semiring_laws<PlusTimes<double>>(with_neg));
  EXPECT_TRUE(all_semiring_laws<MaxPlus<double>>(with_neg));
  EXPECT_TRUE(all_semiring_laws<MinPlus<double>>(with_neg));
  EXPECT_TRUE(all_semiring_laws<MaxMin<double>>(with_neg));
  EXPECT_TRUE(all_semiring_laws<MinMax<double>>(with_neg));
}

TEST(MaxTimesDomain, NonNegativeRealsOnly) {
  // max.× is a semiring over R≥0: 0 (the ⊕-identity) annihilates there.
  const std::vector<double> nonneg = {0.0, 0.5, 1.0, 2.0, 7.5};
  EXPECT_TRUE(all_semiring_laws<MaxTimes<double>>(nonneg));
  // Outside R≥0 the annihilator law fails: max(-2 * 0, ...) — document by
  // exhibiting the broken case.
  EXPECT_FALSE(distributive<MaxTimes<double>>({-2.0, 3.0, -1.0}));
}

TEST(MinTimesInfinityHandling, InfTimesZeroIsAbsorbed) {
  using S = MinTimes<double>;
  // IEEE inf*0 = NaN would break the annihilator; the semiring guards it.
  EXPECT_EQ(S::mul(S::zero(), 0.0), S::zero());
  EXPECT_EQ(S::mul(0.0, S::zero()), S::zero());
  EXPECT_TRUE(all_semiring_laws<S>({0.0, 0.5, 1.0, 3.0, S::zero()}));
}

TEST(LorLandLaws, AllLaws) {
  const std::vector<std::uint8_t> sample = {0, 1};
  EXPECT_TRUE(all_semiring_laws<LorLand>(sample));
}

TEST(UnionIntersectLaws, AllLaws) {
  std::vector<ValueSet> sample = {
      ValueSet::empty(), ValueSet::all(), ValueSet{1},      ValueSet{2, 3},
      ValueSet{1, 2, 3}, ValueSet{5},     ValueSet{1, 5, 9}};
  EXPECT_TRUE(all_semiring_laws<UnionIntersect>(sample));
}

TEST(UnionIntersectLaws, IdentitiesAreTableOne) {
  // Table I row: (P(V), ∪, ∩, ∅, P(V)).
  EXPECT_TRUE(UnionIntersect::zero().is_empty());
  EXPECT_TRUE(UnionIntersect::one().is_universe());
}

TEST(BoundedOrderedSetLaws, MaxMinOverStrings) {
  using S = BoundedMaxMin<std::string>;
  using B = Bounded<std::string>;
  const std::vector<B> sample = {B::neg_inf(), B::pos_inf(),
                                 B::finite("alice"), B::finite("bob"),
                                 B::finite("carol")};
  EXPECT_TRUE(all_semiring_laws<S>(sample));
}

TEST(BoundedOrderedSetLaws, MinMaxOverStrings) {
  using S = BoundedMinMax<std::string>;
  using B = Bounded<std::string>;
  const std::vector<B> sample = {B::neg_inf(), B::pos_inf(), B::finite("x"),
                                 B::finite("y"), B::finite("zebra")};
  EXPECT_TRUE(all_semiring_laws<S>(sample));
}

TEST(BoundedOrder, InfinitiesBracketFiniteValues) {
  using B = Bounded<std::string>;
  EXPECT_TRUE(B::neg_inf() < B::finite(""));
  EXPECT_TRUE(B::finite("zzz") < B::pos_inf());
  EXPECT_TRUE(B::finite("a") < B::finite("b"));
  EXPECT_FALSE(B::neg_inf() < B::neg_inf());
}

TEST(MonoidViews, AddAndMulMonoidsOfASemiring) {
  using Add = AddMonoidOf<MaxPlus<double>>;
  using Mul = MulMonoidOf<MaxPlus<double>>;
  EXPECT_EQ(Add::identity(), MaxPlus<double>::zero());
  EXPECT_EQ(Mul::identity(), MaxPlus<double>::one());
  EXPECT_EQ(Add::op(3.0, 5.0), 5.0);
  EXPECT_EQ(Mul::op(3.0, 5.0), 8.0);
}

TEST(LawCheckers, DetectBrokenStructure) {
  // minus is not associative / has no identity: the checkers must say no.
  struct BadRing {
    using value_type = double;
    static constexpr std::string_view name() { return "bad"; }
    static double zero() { return 0; }
    static double one() { return 1; }
    static double add(double a, double b) { return a - b; }
    static double mul(double a, double b) { return a * b; }
  };
  const std::vector<double> sample = {1.0, 2.0, 3.0};
  EXPECT_FALSE(add_commutative<BadRing>(sample));
  EXPECT_FALSE(add_associative<BadRing>(sample));
}

}  // namespace
