// Tests for matrix serialization and CSV ⇄ associative-table ingestion.

#include <gtest/gtest.h>

#include "db/csv.hpp"
#include "semiring/all.hpp"
#include "sparse/io.hpp"
#include "sparse/serialize.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::sparse;
using S = semiring::PlusTimes<double>;

TEST(Serialize, RoundTripPreservesEverything) {
  const auto a = make_matrix<S>(5, 7, {{0, 1, 1.5}, {2, 6, -3.25},
                                       {4, 0, 1e-9}});
  const auto b = from_string<S>(to_string(a));
  EXPECT_EQ(a, b);
}

TEST(Serialize, HypersparseRoundTrip) {
  const Index huge = Index{1} << 50;
  const auto a = Matrix<double>::from_unique_triples(
      huge, huge, {{Index{1} << 49, 3, 2.0}});
  const auto b = from_string<S>(to_string(a));
  EXPECT_EQ(a, b);
  EXPECT_EQ(b.format(), Format::kDcsr);
}

TEST(Serialize, EmptyMatrix) {
  const Matrix<double> a(3, 4);
  const auto b = from_string<S>(to_string(a));
  EXPECT_EQ(b.nrows(), 3);
  EXPECT_EQ(b.ncols(), 4);
  EXPECT_EQ(b.nnz(), 0);
}

TEST(Serialize, PrecisionSurvives) {
  const double v = 0.1 + 0.2;  // not representable exactly
  const auto a = make_matrix<S>(1, 1, {{0, 0, v}});
  const auto b = from_string<S>(to_string(a));
  EXPECT_EQ(b.get(0, 0), v);  // 17 significant digits round-trip doubles
}

TEST(Serialize, RejectsBadHeader) {
  EXPECT_THROW(from_string<S>("nonsense\n"), std::invalid_argument);
  EXPECT_THROW(from_string<S>(""), std::invalid_argument);
}

TEST(Serialize, RejectsTruncatedBody) {
  EXPECT_THROW(from_string<S>("%%hyperspace matrix coordinate 2 2 3\n0 0 1\n"),
               std::invalid_argument);
}

TEST(Serialize, RejectsOutOfShapeEntries) {
  EXPECT_THROW(from_string<S>("%%hyperspace matrix coordinate 2 2 1\n5 0 1\n"),
               std::out_of_range);
}

TEST(Serialize, DuplicatesCombineOnLoadWithSemiring) {
  const auto m = from_string<S>(
      "%%hyperspace matrix coordinate 2 2 2\n0 0 1.5\n0 0 2.5\n");
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_EQ(m.get(0, 0), 4.0);
  using MP = semiring::MinPlus<double>;
  const auto m2 = from_string<MP>(
      "%%hyperspace matrix coordinate 2 2 2\n0 0 7\n0 0 3\n");
  EXPECT_EQ(m2.get(0, 0), 3.0);
}

TEST(CsvParse, SimpleLine) {
  EXPECT_EQ(db::parse_csv_line("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvParse, QuotedFieldsWithCommasAndQuotes) {
  EXPECT_EQ(db::parse_csv_line(R"("x,y",plain,"say ""hi""")"),
            (std::vector<std::string>{"x,y", "plain", R"(say "hi")"}));
}

TEST(CsvParse, EmptyFieldsPreserved) {
  EXPECT_EQ(db::parse_csv_line("a,,c,"),
            (std::vector<std::string>{"a", "", "c", ""}));
}

TEST(CsvParse, UnterminatedQuoteThrows) {
  EXPECT_THROW(db::parse_csv_line("\"oops"), std::invalid_argument);
}

TEST(CsvEscape, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(db::csv_escape("plain"), "plain");
  EXPECT_EQ(db::csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(db::csv_escape("q\"q"), "\"q\"\"q\"");
}

TEST(CsvTable, IngestAndQuery) {
  const auto t = db::read_csv_string(
      "src,link,dest\n"
      "1.1.1.1,http,0.0.0.0\n"
      "0.0.0.0,udp,1.1.1.1\n"
      "1.1.1.1,ssh,2.2.2.2\n");
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.select_values("src", "1.1.1.1", "dest"),
            (std::vector<std::string>{"0.0.0.0", "2.2.2.2"}));
}

TEST(CsvTable, EmptyCellsAreAbsentNotStored) {
  const auto t = db::read_csv_string("a,b\nx,\n,y\n");
  const auto& arr = t.array();
  EXPECT_EQ(arr.nnz(), 2);  // one cell per row, not four
}

TEST(CsvTable, MissingHeaderThrows) {
  EXPECT_THROW(db::read_csv_string(""), std::invalid_argument);
}

TEST(CsvTable, WideRowThrows) {
  EXPECT_THROW(db::read_csv_string("a,b\n1,2,3\n"), std::invalid_argument);
}

TEST(CsvTable, RoundTripThroughWriteCsv) {
  const auto t = db::read_csv_string(
      "name,city\nalice,nyc\nbob,\"san,francisco\"\n");
  const auto out = db::write_csv_string(t);
  // Re-ingest the emitted CSV (skipping the synthetic "row" column).
  std::istringstream is(out);
  std::string header;
  std::getline(is, header);
  EXPECT_EQ(db::parse_csv_line(header),
            (std::vector<std::string>{"row", "city", "name"}));
  std::string row1;
  std::getline(is, row1);
  const auto fields = db::parse_csv_line(row1);
  EXPECT_EQ(fields[1], "nyc");
  EXPECT_EQ(fields[2], "alice");
}

TEST(CsvTable, SelectOnCsvDataMatchesDirect) {
  const auto t = db::read_csv_string(
      "proto,port\nhttp,80\nhttps,443\nhttp,8080\n");
  EXPECT_EQ(t.select_semilink("proto", "http"), t.select_direct("proto", "http"));
  EXPECT_EQ(t.select_values("proto", "http", "port"),
            (std::vector<std::string>{"80", "8080"}));
}

}  // namespace
