// Tests for the batched query serving engine (serve/): block-diagonal
// coalescing must be bit-identical to per-query execution for every
// semiring family, mask sense mix, ragged batch shape, strategy, and
// thread count — batching may never change an answer. Also covers the
// executor's admission policy / ServeStats and the planner's batch router.

#include <gtest/gtest.h>

#include "db/planner.hpp"
#include "helpers.hpp"
#include "semiring/all.hpp"
#include "serve/executor.hpp"
#include "sparse/io.hpp"
#include "util/rng.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::sparse;
using hyperspace::testing::ThreadGuard;
using S = semiring::PlusTimes<double>;

template <semiring::Semiring Sr, typename Gen>
Matrix<typename Sr::value_type> random_matrix(Index nrows, Index ncols,
                                              int nnz, std::uint64_t seed,
                                              Gen&& entry) {
  util::Xoshiro256 rng(seed);
  std::vector<Triple<typename Sr::value_type>> t;
  for (int i = 0; i < nnz; ++i) {
    t.push_back({static_cast<Index>(rng.bounded(
                     static_cast<std::uint64_t>(nrows))),
                 static_cast<Index>(rng.bounded(
                     static_cast<std::uint64_t>(ncols))),
                 entry(rng)});
  }
  return Matrix<typename Sr::value_type>::template from_triples<Sr>(
      nrows, ncols, std::move(t));
}

double dbl_entry(util::Xoshiro256& r) { return r.uniform(-1.0, 1.0); }

/// A ragged batch exercising every query kind: unmasked, plain-masked,
/// complement-masked, empty (no entries), zero-row, 1-row, and select.
template <semiring::Semiring Sr, typename Gen>
std::vector<serve::Query<Sr>> ragged_batch(Index n, std::uint64_t seed,
                                           Gen&& entry) {
  using Q = serve::Query<Sr>;
  std::vector<Q> qs;
  qs.push_back(Q::analytic(random_matrix<Sr>(6, n, 40, seed + 1, entry)));
  qs.push_back(Q::masked(random_matrix<Sr>(5, n, 30, seed + 2, entry),
                                random_matrix<Sr>(5, n, 60, seed + 3, entry)));
  qs.push_back(Q::masked(
      random_matrix<Sr>(4, n, 25, seed + 4, entry),
      random_matrix<Sr>(4, n, 20, seed + 5, entry), {.complement = true}));
  qs.push_back(Q::analytic(random_matrix<Sr>(2, n, 0, seed + 6, entry)));
  qs.push_back(
      Q::analytic(random_matrix<Sr>(0, n, 0, seed + 7, entry)));  // zero rows
  qs.push_back(Q::analytic(random_matrix<Sr>(1, n, 8, seed + 8, entry)));
  qs.push_back(Q::select({0, n / 2, n - 1}, n));
  return qs;
}

template <semiring::Semiring Sr, typename Gen>
void expect_batched_equals_sequential(Index n, std::uint64_t seed,
                                      Gen&& entry) {
  const auto base = random_matrix<Sr>(n, n, 6 * static_cast<int>(n), seed,
                                      entry);
  const auto queries = ragged_batch<Sr>(n, seed, entry);
  for (const int nt : {1, 2, 8}) {
    ThreadGuard guard(nt);
    serve::ServeStats stats;
    const auto batched = serve::run_batch(base, queries,
                                          MxmStrategy::kAuto, &stats);
    ASSERT_EQ(batched.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(batched[i], serve::run_single(base, queries[i]))
          << "threads=" << nt << " query=" << i;
    }
    EXPECT_EQ(stats.queries, queries.size());
    EXPECT_EQ(stats.kernel_launches, 1u);
    EXPECT_EQ(stats.launches_saved, queries.size() - 1);
  }
}

TEST(ServeBatch, ArithmeticSemiringAllThreadCounts) {
  expect_batched_equals_sequential<semiring::PlusTimes<double>>(48, 101,
                                                               dbl_entry);
}

TEST(ServeBatch, TropicalSemiringAllThreadCounts) {
  expect_batched_equals_sequential<semiring::MinPlus<double>>(
      48, 202, [](util::Xoshiro256& r) { return r.uniform(0.0, 10.0); });
}

TEST(ServeBatch, SetSemiringAllThreadCounts) {
  expect_batched_equals_sequential<semiring::UnionIntersect>(
      40, 303, [](util::Xoshiro256& r) {
        return semiring::ValueSet{static_cast<std::int64_t>(r.bounded(16)),
                                  static_cast<std::int64_t>(r.bounded(16))};
      });
}

TEST(ServeBatch, EveryStrategyBitIdentical) {
  const Index n = 40;
  const auto base = random_matrix<S>(n, n, 240, 7, dbl_entry);
  const auto queries = ragged_batch<S>(n, 7, dbl_entry);
  for (const auto strat : {MxmStrategy::kGustavson, MxmStrategy::kHash,
                           MxmStrategy::kSorted}) {
    const auto batched = serve::run_batch(base, queries, strat);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(batched[i], serve::run_single(base, queries[i], strat))
          << "strategy=" << static_cast<int>(strat) << " query=" << i;
    }
  }
}

TEST(ServeBatch, StatsThreadCountInvariant) {
  const Index n = 48;
  const auto base = random_matrix<S>(n, n, 300, 9, dbl_entry);
  const auto queries = ragged_batch<S>(n, 9, dbl_entry);
  serve::ServeStats ref;
  {
    ThreadGuard guard(1);
    serve::run_batch(base, queries, MxmStrategy::kAuto, &ref);
  }
  for (const int nt : {2, 8}) {
    ThreadGuard guard(nt);
    serve::ServeStats st;
    serve::run_batch(base, queries, MxmStrategy::kAuto, &st);
    EXPECT_EQ(st.flops_kept, ref.flops_kept) << "threads=" << nt;
    EXPECT_EQ(st.flops_skipped, ref.flops_skipped) << "threads=" << nt;
    EXPECT_EQ(st.rows_coalesced, ref.rows_coalesced);
  }
}

TEST(ServeBatch, HypersparseQueriesCoalesce) {
  // Queries whose row spaces are hypersparse-huge: the stacked operand
  // must go through DCSR and stay bit-identical.
  const Index huge = Index{1} << 38;
  const Index n = 64;
  const auto base = random_matrix<S>(n, n, 300, 11, dbl_entry);
  using Q = serve::Query<S>;
  std::vector<Q> qs;
  qs.push_back(Q::analytic(Matrix<double>::from_unique_triples(
      huge, n, {{5, 3, 2.0}, {Index{1} << 35, 7, 3.0}})));
  qs.push_back(Q::analytic(Matrix<double>::from_unique_triples(
      huge, n, {{Index{1} << 30, 1, 4.0}})));
  qs.push_back(Q::analytic(random_matrix<S>(4, n, 20, 12, dbl_entry)));
  for (const int nt : {1, 8}) {
    ThreadGuard guard(nt);
    const auto batched = serve::run_batch(base, qs);
    for (std::size_t i = 0; i < qs.size(); ++i) {
      EXPECT_EQ(batched[i], serve::run_single(base, qs[i])) << "query=" << i;
    }
  }
}

TEST(ServeBatch, SelectReturnsBaseRows) {
  const Index n = 32;
  const auto base = random_matrix<S>(n, n, 200, 13, dbl_entry);
  const std::vector<Index> rows{3, 17, 3, 31};  // repeats allowed
  const auto rs =
      serve::run_batch<S>(base, {serve::Query<S>::select(rows, n)});
  ASSERT_EQ(rs.size(), 1u);
  const auto& r = rs.front();
  EXPECT_EQ(r.nrows(), static_cast<Index>(rows.size()));
  const auto v = base.view();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto want = v.row_cols(static_cast<std::size_t>(rows[i]));
    for (std::size_t j = 0; j < want.size(); ++j) {
      EXPECT_EQ(r.get(static_cast<Index>(i), want[j]),
                v.row_vals(static_cast<std::size_t>(rows[i]))[j]);
    }
    EXPECT_EQ(r.get(static_cast<Index>(i), 0).has_value(),
              std::binary_search(want.begin(), want.end(), Index{0}));
  }
}

TEST(ServeBatch, ShapeMismatchesThrow) {
  const auto base = random_matrix<S>(16, 16, 40, 15, dbl_entry);
  using Q = serve::Query<S>;
  EXPECT_THROW(
      serve::run_batch<S>(
          base, {Q::analytic(random_matrix<S>(2, 8, 4, 1, dbl_entry))}),
      std::invalid_argument);
  EXPECT_THROW(
      serve::run_batch<S>(
          base, {Q::masked(random_matrix<S>(2, 16, 4, 1, dbl_entry),
                                  random_matrix<S>(3, 16, 4, 2, dbl_entry))}),
      std::invalid_argument);
}

TEST(MxmMaskedBatched, BadOffsetsThrow) {
  const auto a = random_matrix<S>(4, 4, 8, 1, dbl_entry);
  const auto m = random_matrix<S>(4, 4, 8, 2, dbl_entry);
  const std::vector<MaskDesc> descs(2);
  EXPECT_THROW(mxm_masked_batched<S>(a, a, m, std::vector<Index>{0, 2, 3},
                                     descs),
               std::invalid_argument);
  EXPECT_THROW(mxm_masked_batched<S>(a, a, m, std::vector<Index>{0, 3, 2, 4},
                                     std::vector<MaskDesc>(3)),
               std::invalid_argument);
}

// --------------------------------------------------------------------------
// Multi-base coalescing: queries against different bases share one launch.

/// Ragged queries against one (nrows × ncols) base: unmasked, plain- and
/// complement-masked, select, and empty.
template <semiring::Semiring Sr, typename Gen>
std::vector<serve::Query<Sr>> base_queries(Index nrows, Index ncols,
                                           std::uint64_t seed, Gen&& entry) {
  using Q = serve::Query<Sr>;
  std::vector<Q> qs;
  qs.push_back(Q::analytic(random_matrix<Sr>(5, nrows, 30, seed + 1, entry)));
  qs.push_back(
      Q::masked(random_matrix<Sr>(4, nrows, 24, seed + 2, entry),
                       random_matrix<Sr>(4, ncols, 40, seed + 3, entry)));
  qs.push_back(
      Q::masked(random_matrix<Sr>(3, nrows, 18, seed + 4, entry),
                       random_matrix<Sr>(3, ncols, 12, seed + 5, entry),
                       {.complement = true}));
  qs.push_back(Q::select({0, nrows - 1}, nrows));
  qs.push_back(Q::analytic(random_matrix<Sr>(2, nrows, 0, seed + 6, entry)));
  return qs;
}

template <semiring::Semiring Sr, typename Gen>
void expect_multi_batched_equals_sequential(std::uint64_t seed, Gen&& entry) {
  using T = typename Sr::value_type;
  // Bases of different shapes AND column spaces — the two-sided case.
  const auto b0 = random_matrix<Sr>(48, 48, 280, seed, entry);
  const auto b1 = random_matrix<Sr>(32, 20, 180, seed + 50, entry);
  const auto b2 = random_matrix<Sr>(16, 64, 100, seed + 90, entry);
  const std::vector<const Matrix<T>*> bases{&b0, &b1, &b2};

  // Interleave per-base query mixes so no base's queries are contiguous.
  std::vector<serve::Query<Sr>> qs;
  std::vector<std::size_t> ids;
  auto q0 = base_queries<Sr>(48, 48, seed + 11, entry);
  auto q1 = base_queries<Sr>(32, 20, seed + 22, entry);
  auto q2 = base_queries<Sr>(16, 64, seed + 33, entry);
  for (std::size_t i = 0; i < q0.size(); ++i) {
    qs.push_back(std::move(q0[i]));
    ids.push_back(0);
    qs.push_back(std::move(q2[i]));
    ids.push_back(2);
    qs.push_back(std::move(q1[i]));
    ids.push_back(1);
  }

  for (const int nt : {1, 2, 8}) {
    ThreadGuard guard(nt);
    serve::ServeStats stats;
    const auto batched = serve::run_batch_multi<Sr>(
        bases, qs, ids, MxmStrategy::kAuto, &stats);
    ASSERT_EQ(batched.size(), qs.size());
    for (std::size_t i = 0; i < qs.size(); ++i) {
      EXPECT_EQ(batched[i], serve::run_single(*bases[ids[i]], qs[i]))
          << "threads=" << nt << " query=" << i << " base=" << ids[i];
    }
    EXPECT_EQ(stats.queries, qs.size());
    EXPECT_EQ(stats.kernel_launches, 1u);
    EXPECT_EQ(stats.launches_saved, qs.size() - 1);
  }
}

TEST(ServeMultiBase, ArithmeticSemiringAllThreadCounts) {
  expect_multi_batched_equals_sequential<semiring::PlusTimes<double>>(
      401, dbl_entry);
}

TEST(ServeMultiBase, TropicalSemiringAllThreadCounts) {
  expect_multi_batched_equals_sequential<semiring::MinPlus<double>>(
      502, [](util::Xoshiro256& r) { return r.uniform(0.0, 10.0); });
}

TEST(ServeMultiBase, SetSemiringAllThreadCounts) {
  expect_multi_batched_equals_sequential<semiring::UnionIntersect>(
      603, [](util::Xoshiro256& r) {
        return semiring::ValueSet{static_cast<std::int64_t>(r.bounded(16)),
                                  static_cast<std::int64_t>(r.bounded(16))};
      });
}

TEST(ServeMultiBase, EveryStrategyBitIdentical) {
  const auto b0 = random_matrix<S>(40, 40, 240, 71, dbl_entry);
  const auto b1 = random_matrix<S>(24, 32, 150, 72, dbl_entry);
  const std::vector<const Matrix<double>*> bases{&b0, &b1};
  std::vector<serve::Query<S>> qs;
  std::vector<std::size_t> ids;
  auto q0 = base_queries<S>(40, 40, 73, dbl_entry);
  auto q1 = base_queries<S>(24, 32, 74, dbl_entry);
  for (auto& q : q0) {
    qs.push_back(std::move(q));
    ids.push_back(0);
  }
  for (auto& q : q1) {
    qs.push_back(std::move(q));
    ids.push_back(1);
  }
  // kGustavson included: both bases fit a dense scratch, and so does the
  // stacked column space — the coalesced path, not the per-base fallback.
  for (const auto strat : {MxmStrategy::kGustavson, MxmStrategy::kHash,
                           MxmStrategy::kSorted}) {
    const auto batched = serve::run_batch_multi<S>(bases, qs, ids, strat);
    for (std::size_t i = 0; i < qs.size(); ++i) {
      EXPECT_EQ(batched[i], serve::run_single(*bases[ids[i]], qs[i], strat))
          << "strategy=" << static_cast<int>(strat) << " query=" << i;
    }
  }
}

TEST(ServeMultiBase, SingleBaseIdsDelegateToSingleBasePath) {
  const auto b0 = random_matrix<S>(32, 32, 200, 81, dbl_entry);
  const std::vector<const Matrix<double>*> bases{&b0};
  const auto qs = ragged_batch<S>(32, 82, dbl_entry);
  const std::vector<std::size_t> ids(qs.size(), 0);
  serve::ServeStats st;
  const auto multi =
      serve::run_batch_multi<S>(bases, qs, ids, MxmStrategy::kAuto, &st);
  const auto single = serve::run_batch(b0, qs);
  ASSERT_EQ(multi.size(), single.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(multi[i], single[i]) << "query=" << i;
  }
  EXPECT_EQ(st.kernel_launches, 1u);
}

TEST(ServeMultiBase, HypersparseBasesCoalesce) {
  // Stacked column space far beyond the dense-accumulator cap: the
  // coalesced product must route through the flat hash and stay exact.
  const Index huge = Index{1} << 30;
  const auto b0 = random_matrix<S>(64, huge, 120, 91, dbl_entry);
  const auto b1 = random_matrix<S>(32, 32, 150, 92, dbl_entry);
  const std::vector<const Matrix<double>*> bases{&b0, &b1};
  std::vector<serve::Query<S>> qs;
  std::vector<std::size_t> ids;
  qs.push_back(serve::Query<S>::analytic(
      random_matrix<S>(3, 64, 12, 93, dbl_entry)));
  ids.push_back(0);
  qs.push_back(serve::Query<S>::analytic(
      random_matrix<S>(2, 32, 10, 94, dbl_entry)));
  ids.push_back(1);
  for (const int nt : {1, 8}) {
    ThreadGuard guard(nt);
    const auto batched = serve::run_batch_multi<S>(bases, qs, ids);
    for (std::size_t i = 0; i < qs.size(); ++i) {
      EXPECT_EQ(batched[i], serve::run_single(*bases[ids[i]], qs[i]))
          << "query=" << i;
    }
  }
}

TEST(ServeMultiBase, GustavsonTooWideForStackFallsBackPerBase) {
  // Each base alone fits the dense scratch, the stack would not: forced
  // kGustavson must fall back to one batch per base and stay exact.
  const Index wide = (Index{1} << 23) + 8;  // 2 × wide > kMaxGustavsonWidth
  const auto b0 = random_matrix<S>(16, wide, 60, 95, dbl_entry);
  const auto b1 = random_matrix<S>(16, wide, 60, 96, dbl_entry);
  ASSERT_GT(2 * wide, kMaxGustavsonWidth);
  const std::vector<const Matrix<double>*> bases{&b0, &b1};
  std::vector<serve::Query<S>> qs;
  std::vector<std::size_t> ids;
  for (int i = 0; i < 4; ++i) {
    qs.push_back(serve::Query<S>::analytic(random_matrix<S>(
        2, 16, 8, 97 + static_cast<std::uint64_t>(i), dbl_entry)));
    ids.push_back(static_cast<std::size_t>(i % 2));
  }
  serve::ServeStats st;
  const auto batched = serve::run_batch_multi<S>(
      bases, qs, ids, MxmStrategy::kGustavson, &st);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(batched[i], serve::run_single(*bases[ids[i]], qs[i],
                                            MxmStrategy::kGustavson))
        << "query=" << i;
  }
  EXPECT_EQ(st.kernel_launches, 2u);  // one per base, still batched within
  EXPECT_EQ(st.queries, 4u);
}

TEST(ServeMultiBase, BadBaseIdsThrow) {
  const auto b0 = random_matrix<S>(8, 8, 20, 99, dbl_entry);
  const std::vector<const Matrix<double>*> bases{&b0};
  const std::vector<serve::Query<S>> qs{
      serve::Query<S>::analytic(random_matrix<S>(1, 8, 4, 100, dbl_entry))};
  EXPECT_THROW(serve::run_batch_multi<S>(bases, qs,
                                         std::vector<std::size_t>{1}),
               std::invalid_argument);
  EXPECT_THROW(serve::run_batch_multi<S>(bases, qs,
                                         std::vector<std::size_t>{}),
               std::invalid_argument);
}

TEST(MxmMaskedBatched, TwoSidedBlocksMatchPerBlockMasked) {
  // The public two-sided kernel: stacked lhs against block_diag(B0, B1),
  // with each block's mask kept in its base's LOCAL column space.
  const Index n0 = 24, c0 = 20, n1 = 16, c1 = 40;
  const auto b0 = random_matrix<S>(n0, c0, 120, 111, dbl_entry);
  const auto b1 = random_matrix<S>(n1, c1, 140, 112, dbl_entry);
  const auto a0 = random_matrix<S>(5, n0, 30, 113, dbl_entry);
  const auto a1 = random_matrix<S>(4, n1, 24, 114, dbl_entry);
  const auto m0 = random_matrix<S>(5, c0, 40, 115, dbl_entry);
  const auto m1 = random_matrix<S>(4, c1, 30, 116, dbl_entry);

  const auto stack =
      sparse::stack_bases<double>(std::vector<const Matrix<double>*>{&b0, &b1});
  // Stacked lhs: block q's columns shift into base q's row band.
  const auto A = sparse::concat_blocks<double>(
      9, stack.stacked.nrows(),
      {{&a0, 0, stack.row_offsets[0]}, {&a1, 5, stack.row_offsets[1]}});
  // Stacked mask: per-block rows, columns left LOCAL (ncols = widest).
  std::vector<Triple<double>> mt;
  for (const auto& t : m0.to_triples()) mt.push_back(t);
  for (const auto& t : m1.to_triples()) mt.push_back({t.row + 5, t.col, t.val});
  const auto M = Matrix<double>::from_canonical_triples(9, c1, mt);

  const std::vector<Index> row_offsets{0, 5, 9};
  const std::vector<Index> col_offsets{stack.col_offsets[0],
                                       stack.col_offsets[1]};
  const std::vector<MaskDesc> descs{{}, {.complement = true}};

  for (const int nt : {1, 8}) {
    ThreadGuard guard(nt);
    MxmMaskStats ms;
    const auto C = mxm_masked_batched<S>(A, stack.stacked, M, row_offsets,
                                         col_offsets, descs, &ms);
    const auto c0_want = mxm_masked<S>(a0, b0, m0, descs[0]);
    const auto c1_want = mxm_masked<S>(a1, b1, m1, descs[1]);
    // Expected stack: per-block results at their (row, col) offsets.
    const auto want = sparse::concat_blocks<double>(
        9, stack.col_offsets.back(),
        {{&c0_want, 0, col_offsets[0]}, {&c1_want, 5, col_offsets[1]}});
    EXPECT_EQ(C, want) << "threads=" << nt;
    // Exact per-flop accounting survives the two-sided probe.
    MxmMaskStats ms0, ms1;
    (void)mxm_masked<S>(a0, b0, m0, descs[0], &ms0);
    (void)mxm_masked<S>(a1, b1, m1, descs[1], &ms1);
    EXPECT_EQ(ms.flops_kept, ms0.flops_kept + ms1.flops_kept);
    EXPECT_EQ(ms.flops_skipped, ms0.flops_skipped + ms1.flops_skipped);
  }
}

TEST(MxmMaskedBatched, TwoSidedBadOffsetsThrow) {
  const auto a = random_matrix<S>(4, 4, 8, 121, dbl_entry);
  const auto m = random_matrix<S>(4, 4, 8, 122, dbl_entry);
  const std::vector<MaskDesc> descs(2);
  // col_offsets size must match descs.
  EXPECT_THROW(
      mxm_masked_batched<S>(a, a, m, std::vector<Index>{0, 2, 4},
                            std::vector<Index>{0}, descs),
      std::invalid_argument);
}

// --------------------------------------------------------------------------
// Executor: queue, admission policy, stats.

TEST(Executor, TicketsResolveInSubmissionOrder) {
  const Index n = 32;
  auto base = random_matrix<S>(n, n, 160, 21, dbl_entry);
  serve::Executor<S> ex(base);
  const auto queries = ragged_batch<S>(n, 21, dbl_entry);
  std::vector<std::size_t> tickets;
  for (const auto& q : queries) tickets.push_back(ex.submit(q));
  EXPECT_EQ(ex.pending(), queries.size());
  ex.flush();
  EXPECT_EQ(ex.pending(), 0u);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(ex.wait(tickets[i]), serve::run_single(base, queries[i]))
        << "query=" << i;
  }
  EXPECT_EQ(ex.stats().queries, queries.size());
  EXPECT_EQ(ex.stats().batches, 1u);
  EXPECT_EQ(ex.stats().launches_saved, queries.size() - 1);
}

TEST(Executor, ResultAutoFlushes) {
  const Index n = 16;
  serve::Executor<S> ex(random_matrix<S>(n, n, 60, 22, dbl_entry));
  const auto t =
      ex.submit(serve::Query<S>::analytic(random_matrix<S>(2, n, 6, 23,
                                                         dbl_entry)));
  EXPECT_EQ(ex.pending(), 1u);
  (void)ex.wait(t);  // implicit flush
  EXPECT_EQ(ex.pending(), 0u);
  EXPECT_THROW(ex.wait(99), std::out_of_range);
}

TEST(Executor, ResultReferenceSurvivesLaterSubmits) {
  // The serving loop interleaves redeeming answers with new traffic: a
  // result() reference must stay valid across subsequent submit()/flush().
  const Index n = 16;
  serve::Executor<S> ex(random_matrix<S>(n, n, 80, 27, dbl_entry));
  const auto q0 = serve::Query<S>::analytic(random_matrix<S>(2, n, 6, 28,
                                                           dbl_entry));
  const auto t0 = ex.submit(q0);
  const auto& r0 = ex.wait(t0);
  const auto snapshot = r0;  // value copy for comparison
  for (int i = 0; i < 200; ++i) {  // enough submits to force regrowth
    ex.submit(serve::Query<S>::analytic(
        random_matrix<S>(1, n, 3, 100 + static_cast<std::uint64_t>(i),
                         dbl_entry)));
  }
  ex.flush();
  EXPECT_EQ(r0, snapshot);  // same storage, unmoved and unchanged
  EXPECT_EQ(&ex.wait(t0), &r0);
}

TEST(Executor, BatchSizeAdmissionSplitsQueue) {
  const Index n = 24;
  serve::Executor<S> ex(random_matrix<S>(n, n, 100, 24, dbl_entry),
                        {.max_batch_queries = 2});
  for (int i = 0; i < 5; ++i) {
    ex.submit(serve::Query<S>::analytic(
        random_matrix<S>(3, n, 10, 30 + static_cast<std::uint64_t>(i),
                         dbl_entry)));
  }
  ex.flush();
  EXPECT_EQ(ex.stats().batches, 3u);          // 2 + 2 + 1
  EXPECT_EQ(ex.stats().kernel_launches, 3u);
  EXPECT_EQ(ex.stats().queries, 5u);
  EXPECT_EQ(ex.stats().launches_saved, 2u);
}

TEST(Executor, FlopBudgetAdmissionSplitsQueue) {
  const Index n = 24;
  serve::Executor<S> ex(random_matrix<S>(n, n, 200, 25, dbl_entry),
                        {.max_batch_flops = 1});  // nothing fits together
  for (int i = 0; i < 3; ++i) {
    ex.submit(serve::Query<S>::analytic(
        random_matrix<S>(3, n, 12, 40 + static_cast<std::uint64_t>(i),
                         dbl_entry)));
  }
  ex.flush();
  // Each batch admits exactly one query: the first is always admitted, the
  // next never fits a 1-flop budget.
  EXPECT_EQ(ex.stats().batches, 3u);
  EXPECT_EQ(ex.stats().launches_saved, 0u);
}

TEST(Executor, InvalidConfigAndQueriesThrow) {
  const auto base = random_matrix<S>(8, 8, 20, 26, dbl_entry);
  EXPECT_THROW(serve::Executor<S>(base, {.max_batch_queries = 0}),
               std::invalid_argument);
  serve::Executor<S> ex(base);
  EXPECT_THROW(
      ex.submit(serve::Query<S>::analytic(random_matrix<S>(2, 4, 2, 1,
                                                         dbl_entry))),
      std::invalid_argument);
}

// --------------------------------------------------------------------------
// Array façade + planner routing.

array::AssocArray<S> entity_array(const std::vector<array::Key>& rows,
                                  const std::vector<array::Key>& cols,
                                  std::uint64_t seed, int density = 60) {
  util::Xoshiro256 rng(seed);
  std::vector<array::Key> k1, k2;
  std::vector<double> v;
  for (const auto& r : rows) {
    for (const auto& c : cols) {
      if (rng.bounded(100) < static_cast<std::uint64_t>(density)) {
        k1.push_back(r);
        k2.push_back(c);
        v.push_back(rng.uniform(-1.0, 1.0));
      }
    }
  }
  return array::AssocArray<S>(k1, k2, v);
}

TEST(ArrayBatch, MatchesSequentialMtimes) {
  // Full density: every row/col key of the base is guaranteed occupied, so
  // batchability is a property of the test's key spaces, not of the seed.
  const auto base = entity_array({"a", "b", "c", "d"},
                                 {"x", "y", "z"}, 31, 100);
  std::vector<array::BatchQuery<S>> qs;
  qs.push_back({entity_array({"q0", "q1"}, {"a", "c"}, 32), std::nullopt, {}});
  qs.push_back({entity_array({"u"}, {"b", "d"}, 33),
                entity_array({"u"}, {"x", "z"}, 34),
                {}});
  qs.push_back({entity_array({"v", "w"}, {"a", "b", "c", "d"}, 35),
                entity_array({"v"}, {"y"}, 36),
                {.complement = true}});
  serve::ServeStats st;
  const auto rs = array::mtimes_batched(base, qs, &st);
  ASSERT_EQ(rs.size(), qs.size());
  EXPECT_EQ(rs[0], array::mtimes(qs[0].lhs, base));
  EXPECT_EQ(rs[1], array::mtimes_masked(qs[1].lhs, base, *qs[1].mask));
  EXPECT_EQ(rs[2], array::mtimes_masked(qs[2].lhs, base, *qs[2].mask,
                                        {.complement = true}));
  EXPECT_EQ(st.kernel_launches, 1u);
  EXPECT_EQ(st.launches_saved, 2u);
}

TEST(ArrayBatch, UnbatchableQueryThrows) {
  const auto base = entity_array({"a", "b"}, {"x"}, 41);
  // "zzz" is outside the base's row key space, so alignment would widen.
  std::vector<array::BatchQuery<S>> qs;
  qs.push_back({entity_array({"q"}, {"a", "zzz"}, 42), std::nullopt, {}});
  EXPECT_FALSE(array::batchable(base, qs.front()));
  EXPECT_THROW(array::mtimes_batched(base, qs), std::invalid_argument);
}

TEST(PlannedBatch, RoutesCoalescesAndFallsBack) {
  const auto base =
      entity_array({"a", "b", "c", "d"}, {"x", "y", "z"}, 51, 100);
  std::vector<array::BatchQuery<S>> qs;
  // Batchable.
  qs.push_back(
      {array::AssocArray<S>(std::vector<array::Key>{"q0", "q0"},
                            std::vector<array::Key>{"a", "b"},
                            std::vector<double>{1.0, 2.0}),
       std::nullopt,
       {}});
  // Fallback: col keys reach outside the base's row key space.
  qs.push_back(
      {array::AssocArray<S>(std::vector<array::Key>{"q1", "q1"},
                            std::vector<array::Key>{"b", "extra"},
                            std::vector<double>{1.0, 2.0}),
       std::nullopt,
       {}});
  // Annihilated by §IV: no overlap with the base's rows at all.
  qs.push_back(
      {array::AssocArray<S>({"q2"}, {"nowhere"}, {1.0}), std::nullopt, {}});
  // Batchable, masked (explicit entries so the §V-B precheck provably
  // cannot annihilate it).
  qs.push_back(
      {array::AssocArray<S>(std::vector<array::Key>{"q3", "q3", "q4"},
                            std::vector<array::Key>{"c", "d", "d"},
                            std::vector<double>{1.0, 2.0, 3.0}),
       array::AssocArray<S>(std::vector<array::Key>{"q3", "q4"},
                            std::vector<array::Key>{"x", "z"},
                            std::vector<double>{1.0, 1.0}),
       {}});
  // Annihilated by §V-B: empty plain-sense mask.
  qs.push_back({entity_array({"q5"}, {"a"}, 56), array::AssocArray<S>(), {}});

  db::PlanStats ps;
  serve::ServeStats ss;
  const auto rs = db::planned_batch(base, qs, &ps, &ss);
  ASSERT_EQ(rs.size(), qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    const auto want =
        qs[i].mask ? db::planned_mtimes_masked(qs[i].lhs, base, *qs[i].mask,
                                               qs[i].desc)
                   : db::planned_mtimes(qs[i].lhs, base);
    EXPECT_EQ(rs[i], want) << "query=" << i;
  }
  EXPECT_EQ(ps.batches, 1);
  EXPECT_EQ(ps.queries_batched, 2);
  EXPECT_EQ(ps.queries_fallback, 1);
  EXPECT_EQ(ps.products_skipped, 2);
  EXPECT_EQ(ss.kernel_launches, 1u);
  EXPECT_EQ(ss.queries, 2u);
}

TEST(ArrayMultiBatch, MatchesSequentialAcrossBases) {
  const auto base0 = entity_array({"a", "b", "c"}, {"x", "y"}, 71, 100);
  const auto base1 = entity_array({"p", "q"}, {"u", "v", "w"}, 72, 100);
  const std::vector<const array::AssocArray<S>*> bases{&base0, &base1};
  std::vector<array::MultiBatchQuery<S>> qs;
  qs.push_back({0, {entity_array({"k0"}, {"a", "c"}, 73, 100), std::nullopt, {}}});
  qs.push_back({1, {entity_array({"k1"}, {"p", "q"}, 74, 100), std::nullopt, {}}});
  qs.push_back({1,
                {entity_array({"k2"}, {"q"}, 75, 100),
                 entity_array({"k2"}, {"u", "w"}, 76, 100),
                 {}}});
  qs.push_back({0,
                {entity_array({"k3"}, {"b"}, 77, 100),
                 entity_array({"k3"}, {"y"}, 78, 100),
                 {.complement = true}}});
  serve::ServeStats st;
  const auto rs = array::mtimes_batched_multi(bases, qs, &st);
  ASSERT_EQ(rs.size(), qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    const auto& base = *bases[qs[i].base];
    const auto want =
        qs[i].q.mask
            ? array::mtimes_masked(qs[i].q.lhs, base, *qs[i].q.mask,
                                   qs[i].q.desc)
            : array::mtimes(qs[i].q.lhs, base);
    EXPECT_EQ(rs[i], want) << "query=" << i;
  }
  EXPECT_EQ(st.kernel_launches, 1u);  // one launch across BOTH bases
  EXPECT_EQ(st.launches_saved, 3u);
}

TEST(PlannedMultiBatch, RoutesCoalescesAndFallsBackPerBase) {
  const auto base0 = entity_array({"a", "b", "c"}, {"x", "y"}, 81, 100);
  const auto base1 = entity_array({"p", "q"}, {"u", "v"}, 82, 100);
  const std::vector<const array::AssocArray<S>*> bases{&base0, &base1};
  std::vector<array::MultiBatchQuery<S>> qs;
  // Batchable against base 0.
  qs.push_back({0, {entity_array({"k0"}, {"a", "b"}, 83, 100), std::nullopt, {}}});
  // Batchable against base 1.
  qs.push_back({1, {entity_array({"k1"}, {"p"}, 84, 100), std::nullopt, {}}});
  // Fallback: inner keys reach outside base 1's row key space.
  qs.push_back(
      {1, {entity_array({"k2"}, {"q", "stray"}, 85, 100), std::nullopt, {}}});
  // Annihilated by §IV against base 0.
  qs.push_back(
      {0, {entity_array({"k3"}, {"nowhere"}, 86, 100), std::nullopt, {}}});
  db::PlanStats ps;
  serve::ServeStats ss;
  const auto rs = db::planned_multi_batch(bases, qs, &ps, &ss);
  ASSERT_EQ(rs.size(), qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    const auto& base = *bases[qs[i].base];
    const auto want =
        qs[i].q.mask ? db::planned_mtimes_masked(qs[i].q.lhs, base,
                                                 *qs[i].q.mask, qs[i].q.desc)
                     : db::planned_mtimes(qs[i].q.lhs, base);
    EXPECT_EQ(rs[i], want) << "query=" << i;
  }
  EXPECT_EQ(ps.batches, 1);
  EXPECT_EQ(ps.queries_batched, 2);  // one per base, ONE cross-base launch
  EXPECT_EQ(ps.queries_fallback, 1);
  EXPECT_EQ(ps.products_skipped, 1);
  EXPECT_EQ(ss.kernel_launches, 1u);
}

TEST(PlannedBatch, EmptyQueryListIsANoOp) {
  const auto base = entity_array({"a"}, {"x"}, 61);
  db::PlanStats ps;
  EXPECT_TRUE(db::planned_batch<S>(base, {}, &ps).empty());
  EXPECT_EQ(ps.batches, 0);
}

}  // namespace
