// Tests for the batched query serving engine (serve/): block-diagonal
// coalescing must be bit-identical to per-query execution for every
// semiring family, mask sense mix, ragged batch shape, strategy, and
// thread count — batching may never change an answer. Also covers the
// executor's admission policy / ServeStats and the planner's batch router.

#include <gtest/gtest.h>

#include "db/planner.hpp"
#include "helpers.hpp"
#include "semiring/all.hpp"
#include "serve/executor.hpp"
#include "sparse/io.hpp"
#include "util/rng.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::sparse;
using hyperspace::testing::ThreadGuard;
using S = semiring::PlusTimes<double>;

template <semiring::Semiring Sr, typename Gen>
Matrix<typename Sr::value_type> random_matrix(Index nrows, Index ncols,
                                              int nnz, std::uint64_t seed,
                                              Gen&& entry) {
  util::Xoshiro256 rng(seed);
  std::vector<Triple<typename Sr::value_type>> t;
  for (int i = 0; i < nnz; ++i) {
    t.push_back({static_cast<Index>(rng.bounded(
                     static_cast<std::uint64_t>(nrows))),
                 static_cast<Index>(rng.bounded(
                     static_cast<std::uint64_t>(ncols))),
                 entry(rng)});
  }
  return Matrix<typename Sr::value_type>::template from_triples<Sr>(
      nrows, ncols, std::move(t));
}

double dbl_entry(util::Xoshiro256& r) { return r.uniform(-1.0, 1.0); }

/// A ragged batch exercising every query kind: unmasked, plain-masked,
/// complement-masked, empty (no entries), zero-row, 1-row, and select.
template <semiring::Semiring Sr, typename Gen>
std::vector<serve::Query<Sr>> ragged_batch(Index n, std::uint64_t seed,
                                           Gen&& entry) {
  using Q = serve::Query<Sr>;
  std::vector<Q> qs;
  qs.push_back(Q::mtimes(random_matrix<Sr>(6, n, 40, seed + 1, entry)));
  qs.push_back(Q::mtimes_masked(random_matrix<Sr>(5, n, 30, seed + 2, entry),
                                random_matrix<Sr>(5, n, 60, seed + 3, entry)));
  qs.push_back(Q::mtimes_masked(
      random_matrix<Sr>(4, n, 25, seed + 4, entry),
      random_matrix<Sr>(4, n, 20, seed + 5, entry), {.complement = true}));
  qs.push_back(Q::mtimes(random_matrix<Sr>(2, n, 0, seed + 6, entry)));
  qs.push_back(
      Q::mtimes(random_matrix<Sr>(0, n, 0, seed + 7, entry)));  // zero rows
  qs.push_back(Q::mtimes(random_matrix<Sr>(1, n, 8, seed + 8, entry)));
  qs.push_back(Q::select({0, n / 2, n - 1}, n));
  return qs;
}

template <semiring::Semiring Sr, typename Gen>
void expect_batched_equals_sequential(Index n, std::uint64_t seed,
                                      Gen&& entry) {
  const auto base = random_matrix<Sr>(n, n, 6 * static_cast<int>(n), seed,
                                      entry);
  const auto queries = ragged_batch<Sr>(n, seed, entry);
  for (const int nt : {1, 2, 8}) {
    ThreadGuard guard(nt);
    serve::ServeStats stats;
    const auto batched = serve::run_batch(base, queries,
                                          MxmStrategy::kAuto, &stats);
    ASSERT_EQ(batched.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(batched[i], serve::run_single(base, queries[i]))
          << "threads=" << nt << " query=" << i;
    }
    EXPECT_EQ(stats.queries, queries.size());
    EXPECT_EQ(stats.kernel_launches, 1u);
    EXPECT_EQ(stats.launches_saved, queries.size() - 1);
  }
}

TEST(ServeBatch, ArithmeticSemiringAllThreadCounts) {
  expect_batched_equals_sequential<semiring::PlusTimes<double>>(48, 101,
                                                               dbl_entry);
}

TEST(ServeBatch, TropicalSemiringAllThreadCounts) {
  expect_batched_equals_sequential<semiring::MinPlus<double>>(
      48, 202, [](util::Xoshiro256& r) { return r.uniform(0.0, 10.0); });
}

TEST(ServeBatch, SetSemiringAllThreadCounts) {
  expect_batched_equals_sequential<semiring::UnionIntersect>(
      40, 303, [](util::Xoshiro256& r) {
        return semiring::ValueSet{static_cast<std::int64_t>(r.bounded(16)),
                                  static_cast<std::int64_t>(r.bounded(16))};
      });
}

TEST(ServeBatch, EveryStrategyBitIdentical) {
  const Index n = 40;
  const auto base = random_matrix<S>(n, n, 240, 7, dbl_entry);
  const auto queries = ragged_batch<S>(n, 7, dbl_entry);
  for (const auto strat : {MxmStrategy::kGustavson, MxmStrategy::kHash,
                           MxmStrategy::kSorted}) {
    const auto batched = serve::run_batch(base, queries, strat);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(batched[i], serve::run_single(base, queries[i], strat))
          << "strategy=" << static_cast<int>(strat) << " query=" << i;
    }
  }
}

TEST(ServeBatch, StatsThreadCountInvariant) {
  const Index n = 48;
  const auto base = random_matrix<S>(n, n, 300, 9, dbl_entry);
  const auto queries = ragged_batch<S>(n, 9, dbl_entry);
  serve::ServeStats ref;
  {
    ThreadGuard guard(1);
    serve::run_batch(base, queries, MxmStrategy::kAuto, &ref);
  }
  for (const int nt : {2, 8}) {
    ThreadGuard guard(nt);
    serve::ServeStats st;
    serve::run_batch(base, queries, MxmStrategy::kAuto, &st);
    EXPECT_EQ(st.flops_kept, ref.flops_kept) << "threads=" << nt;
    EXPECT_EQ(st.flops_skipped, ref.flops_skipped) << "threads=" << nt;
    EXPECT_EQ(st.rows_coalesced, ref.rows_coalesced);
  }
}

TEST(ServeBatch, HypersparseQueriesCoalesce) {
  // Queries whose row spaces are hypersparse-huge: the stacked operand
  // must go through DCSR and stay bit-identical.
  const Index huge = Index{1} << 38;
  const Index n = 64;
  const auto base = random_matrix<S>(n, n, 300, 11, dbl_entry);
  using Q = serve::Query<S>;
  std::vector<Q> qs;
  qs.push_back(Q::mtimes(Matrix<double>::from_unique_triples(
      huge, n, {{5, 3, 2.0}, {Index{1} << 35, 7, 3.0}})));
  qs.push_back(Q::mtimes(Matrix<double>::from_unique_triples(
      huge, n, {{Index{1} << 30, 1, 4.0}})));
  qs.push_back(Q::mtimes(random_matrix<S>(4, n, 20, 12, dbl_entry)));
  for (const int nt : {1, 8}) {
    ThreadGuard guard(nt);
    const auto batched = serve::run_batch(base, qs);
    for (std::size_t i = 0; i < qs.size(); ++i) {
      EXPECT_EQ(batched[i], serve::run_single(base, qs[i])) << "query=" << i;
    }
  }
}

TEST(ServeBatch, SelectReturnsBaseRows) {
  const Index n = 32;
  const auto base = random_matrix<S>(n, n, 200, 13, dbl_entry);
  const std::vector<Index> rows{3, 17, 3, 31};  // repeats allowed
  const auto rs =
      serve::run_batch<S>(base, {serve::Query<S>::select(rows, n)});
  ASSERT_EQ(rs.size(), 1u);
  const auto& r = rs.front();
  EXPECT_EQ(r.nrows(), static_cast<Index>(rows.size()));
  const auto v = base.view();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto want = v.row_cols(static_cast<std::size_t>(rows[i]));
    for (std::size_t j = 0; j < want.size(); ++j) {
      EXPECT_EQ(r.get(static_cast<Index>(i), want[j]),
                v.row_vals(static_cast<std::size_t>(rows[i]))[j]);
    }
    EXPECT_EQ(r.get(static_cast<Index>(i), 0).has_value(),
              std::binary_search(want.begin(), want.end(), Index{0}));
  }
}

TEST(ServeBatch, ShapeMismatchesThrow) {
  const auto base = random_matrix<S>(16, 16, 40, 15, dbl_entry);
  using Q = serve::Query<S>;
  EXPECT_THROW(
      serve::run_batch<S>(
          base, {Q::mtimes(random_matrix<S>(2, 8, 4, 1, dbl_entry))}),
      std::invalid_argument);
  EXPECT_THROW(
      serve::run_batch<S>(
          base, {Q::mtimes_masked(random_matrix<S>(2, 16, 4, 1, dbl_entry),
                                  random_matrix<S>(3, 16, 4, 2, dbl_entry))}),
      std::invalid_argument);
}

TEST(MxmMaskedBatched, BadOffsetsThrow) {
  const auto a = random_matrix<S>(4, 4, 8, 1, dbl_entry);
  const auto m = random_matrix<S>(4, 4, 8, 2, dbl_entry);
  const std::vector<MaskDesc> descs(2);
  EXPECT_THROW(mxm_masked_batched<S>(a, a, m, std::vector<Index>{0, 2, 3},
                                     descs),
               std::invalid_argument);
  EXPECT_THROW(mxm_masked_batched<S>(a, a, m, std::vector<Index>{0, 3, 2, 4},
                                     std::vector<MaskDesc>(3)),
               std::invalid_argument);
}

// --------------------------------------------------------------------------
// Executor: queue, admission policy, stats.

TEST(Executor, TicketsResolveInSubmissionOrder) {
  const Index n = 32;
  auto base = random_matrix<S>(n, n, 160, 21, dbl_entry);
  serve::Executor<S> ex(base);
  const auto queries = ragged_batch<S>(n, 21, dbl_entry);
  std::vector<std::size_t> tickets;
  for (const auto& q : queries) tickets.push_back(ex.submit(q));
  EXPECT_EQ(ex.pending(), queries.size());
  ex.flush();
  EXPECT_EQ(ex.pending(), 0u);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(ex.result(tickets[i]), serve::run_single(base, queries[i]))
        << "query=" << i;
  }
  EXPECT_EQ(ex.stats().queries, queries.size());
  EXPECT_EQ(ex.stats().batches, 1u);
  EXPECT_EQ(ex.stats().launches_saved, queries.size() - 1);
}

TEST(Executor, ResultAutoFlushes) {
  const Index n = 16;
  serve::Executor<S> ex(random_matrix<S>(n, n, 60, 22, dbl_entry));
  const auto t =
      ex.submit(serve::Query<S>::mtimes(random_matrix<S>(2, n, 6, 23,
                                                         dbl_entry)));
  EXPECT_EQ(ex.pending(), 1u);
  (void)ex.result(t);  // implicit flush
  EXPECT_EQ(ex.pending(), 0u);
  EXPECT_THROW(ex.result(99), std::out_of_range);
}

TEST(Executor, ResultReferenceSurvivesLaterSubmits) {
  // The serving loop interleaves redeeming answers with new traffic: a
  // result() reference must stay valid across subsequent submit()/flush().
  const Index n = 16;
  serve::Executor<S> ex(random_matrix<S>(n, n, 80, 27, dbl_entry));
  const auto q0 = serve::Query<S>::mtimes(random_matrix<S>(2, n, 6, 28,
                                                           dbl_entry));
  const auto t0 = ex.submit(q0);
  const auto& r0 = ex.result(t0);
  const auto snapshot = r0;  // value copy for comparison
  for (int i = 0; i < 200; ++i) {  // enough submits to force regrowth
    ex.submit(serve::Query<S>::mtimes(
        random_matrix<S>(1, n, 3, 100 + static_cast<std::uint64_t>(i),
                         dbl_entry)));
  }
  ex.flush();
  EXPECT_EQ(r0, snapshot);  // same storage, unmoved and unchanged
  EXPECT_EQ(&ex.result(t0), &r0);
}

TEST(Executor, BatchSizeAdmissionSplitsQueue) {
  const Index n = 24;
  serve::Executor<S> ex(random_matrix<S>(n, n, 100, 24, dbl_entry),
                        {.max_batch_queries = 2});
  for (int i = 0; i < 5; ++i) {
    ex.submit(serve::Query<S>::mtimes(
        random_matrix<S>(3, n, 10, 30 + static_cast<std::uint64_t>(i),
                         dbl_entry)));
  }
  ex.flush();
  EXPECT_EQ(ex.stats().batches, 3u);          // 2 + 2 + 1
  EXPECT_EQ(ex.stats().kernel_launches, 3u);
  EXPECT_EQ(ex.stats().queries, 5u);
  EXPECT_EQ(ex.stats().launches_saved, 2u);
}

TEST(Executor, FlopBudgetAdmissionSplitsQueue) {
  const Index n = 24;
  serve::Executor<S> ex(random_matrix<S>(n, n, 200, 25, dbl_entry),
                        {.max_batch_flops = 1});  // nothing fits together
  for (int i = 0; i < 3; ++i) {
    ex.submit(serve::Query<S>::mtimes(
        random_matrix<S>(3, n, 12, 40 + static_cast<std::uint64_t>(i),
                         dbl_entry)));
  }
  ex.flush();
  // Each batch admits exactly one query: the first is always admitted, the
  // next never fits a 1-flop budget.
  EXPECT_EQ(ex.stats().batches, 3u);
  EXPECT_EQ(ex.stats().launches_saved, 0u);
}

TEST(Executor, InvalidConfigAndQueriesThrow) {
  const auto base = random_matrix<S>(8, 8, 20, 26, dbl_entry);
  EXPECT_THROW(serve::Executor<S>(base, {.max_batch_queries = 0}),
               std::invalid_argument);
  serve::Executor<S> ex(base);
  EXPECT_THROW(
      ex.submit(serve::Query<S>::mtimes(random_matrix<S>(2, 4, 2, 1,
                                                         dbl_entry))),
      std::invalid_argument);
}

// --------------------------------------------------------------------------
// Array façade + planner routing.

array::AssocArray<S> entity_array(const std::vector<array::Key>& rows,
                                  const std::vector<array::Key>& cols,
                                  std::uint64_t seed, int density = 60) {
  util::Xoshiro256 rng(seed);
  std::vector<array::Key> k1, k2;
  std::vector<double> v;
  for (const auto& r : rows) {
    for (const auto& c : cols) {
      if (rng.bounded(100) < static_cast<std::uint64_t>(density)) {
        k1.push_back(r);
        k2.push_back(c);
        v.push_back(rng.uniform(-1.0, 1.0));
      }
    }
  }
  return array::AssocArray<S>(k1, k2, v);
}

TEST(ArrayBatch, MatchesSequentialMtimes) {
  // Full density: every row/col key of the base is guaranteed occupied, so
  // batchability is a property of the test's key spaces, not of the seed.
  const auto base = entity_array({"a", "b", "c", "d"},
                                 {"x", "y", "z"}, 31, 100);
  std::vector<array::BatchQuery<S>> qs;
  qs.push_back({entity_array({"q0", "q1"}, {"a", "c"}, 32), std::nullopt, {}});
  qs.push_back({entity_array({"u"}, {"b", "d"}, 33),
                entity_array({"u"}, {"x", "z"}, 34),
                {}});
  qs.push_back({entity_array({"v", "w"}, {"a", "b", "c", "d"}, 35),
                entity_array({"v"}, {"y"}, 36),
                {.complement = true}});
  serve::ServeStats st;
  const auto rs = array::mtimes_batched(base, qs, &st);
  ASSERT_EQ(rs.size(), qs.size());
  EXPECT_EQ(rs[0], array::mtimes(qs[0].lhs, base));
  EXPECT_EQ(rs[1], array::mtimes_masked(qs[1].lhs, base, *qs[1].mask));
  EXPECT_EQ(rs[2], array::mtimes_masked(qs[2].lhs, base, *qs[2].mask,
                                        {.complement = true}));
  EXPECT_EQ(st.kernel_launches, 1u);
  EXPECT_EQ(st.launches_saved, 2u);
}

TEST(ArrayBatch, UnbatchableQueryThrows) {
  const auto base = entity_array({"a", "b"}, {"x"}, 41);
  // "zzz" is outside the base's row key space, so alignment would widen.
  std::vector<array::BatchQuery<S>> qs;
  qs.push_back({entity_array({"q"}, {"a", "zzz"}, 42), std::nullopt, {}});
  EXPECT_FALSE(array::batchable(base, qs.front()));
  EXPECT_THROW(array::mtimes_batched(base, qs), std::invalid_argument);
}

TEST(PlannedBatch, RoutesCoalescesAndFallsBack) {
  const auto base =
      entity_array({"a", "b", "c", "d"}, {"x", "y", "z"}, 51, 100);
  std::vector<array::BatchQuery<S>> qs;
  // Batchable.
  qs.push_back(
      {array::AssocArray<S>(std::vector<array::Key>{"q0", "q0"},
                            std::vector<array::Key>{"a", "b"},
                            std::vector<double>{1.0, 2.0}),
       std::nullopt,
       {}});
  // Fallback: col keys reach outside the base's row key space.
  qs.push_back(
      {array::AssocArray<S>(std::vector<array::Key>{"q1", "q1"},
                            std::vector<array::Key>{"b", "extra"},
                            std::vector<double>{1.0, 2.0}),
       std::nullopt,
       {}});
  // Annihilated by §IV: no overlap with the base's rows at all.
  qs.push_back(
      {array::AssocArray<S>({"q2"}, {"nowhere"}, {1.0}), std::nullopt, {}});
  // Batchable, masked (explicit entries so the §V-B precheck provably
  // cannot annihilate it).
  qs.push_back(
      {array::AssocArray<S>(std::vector<array::Key>{"q3", "q3", "q4"},
                            std::vector<array::Key>{"c", "d", "d"},
                            std::vector<double>{1.0, 2.0, 3.0}),
       array::AssocArray<S>(std::vector<array::Key>{"q3", "q4"},
                            std::vector<array::Key>{"x", "z"},
                            std::vector<double>{1.0, 1.0}),
       {}});
  // Annihilated by §V-B: empty plain-sense mask.
  qs.push_back({entity_array({"q5"}, {"a"}, 56), array::AssocArray<S>(), {}});

  db::PlanStats ps;
  serve::ServeStats ss;
  const auto rs = db::planned_batch(base, qs, &ps, &ss);
  ASSERT_EQ(rs.size(), qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    const auto want =
        qs[i].mask ? db::planned_mtimes_masked(qs[i].lhs, base, *qs[i].mask,
                                               qs[i].desc)
                   : db::planned_mtimes(qs[i].lhs, base);
    EXPECT_EQ(rs[i], want) << "query=" << i;
  }
  EXPECT_EQ(ps.batches, 1);
  EXPECT_EQ(ps.queries_batched, 2);
  EXPECT_EQ(ps.queries_fallback, 1);
  EXPECT_EQ(ps.products_skipped, 2);
  EXPECT_EQ(ss.kernel_launches, 1u);
  EXPECT_EQ(ss.queries, 2u);
}

TEST(PlannedBatch, EmptyQueryListIsANoOp) {
  const auto base = entity_array({"a"}, {"x"}, 61);
  db::PlanStats ps;
  EXPECT_TRUE(db::planned_batch<S>(base, {}, &ps).empty());
  EXPECT_EQ(ps.batches, 0);
}

}  // namespace
