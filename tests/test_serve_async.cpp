// Tests for the async multi-tenant executor (serve/executor.hpp): the
// background flush thread, ticket futures (wait/poll), per-tenant
// accounting and flop quotas, multi-base submission, and the shutdown /
// drain protocol. The core invariant is unchanged from the synchronous
// engine: no flush timing, batch boundary, tenant mix, base mix, or
// thread count may ever change an answer.

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "helpers.hpp"
#include "semiring/all.hpp"
#include "serve/executor.hpp"
#include "util/rng.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::sparse;
using hyperspace::testing::ThreadGuard;
using S = semiring::PlusTimes<double>;

template <semiring::Semiring Sr, typename Gen>
Matrix<typename Sr::value_type> random_matrix(Index nrows, Index ncols,
                                              int nnz, std::uint64_t seed,
                                              Gen&& entry) {
  util::Xoshiro256 rng(seed);
  std::vector<Triple<typename Sr::value_type>> t;
  for (int i = 0; i < nnz; ++i) {
    t.push_back({static_cast<Index>(rng.bounded(
                     static_cast<std::uint64_t>(nrows))),
                 static_cast<Index>(rng.bounded(
                     static_cast<std::uint64_t>(ncols))),
                 entry(rng)});
  }
  return Matrix<typename Sr::value_type>::template from_triples<Sr>(
      nrows, ncols, std::move(t));
}

double dbl_entry(util::Xoshiro256& r) { return r.uniform(-1.0, 1.0); }

/// A base whose every row has exactly 4 entries, so admission flops are a
/// closed-form function of the lhs pattern: flops(q) = 4 · nnz(lhs).
Matrix<double> uniform_base(Index n) {
  std::vector<Triple<double>> t;
  for (Index r = 0; r < n; ++r) {
    for (Index j = 0; j < 4; ++j) {
      t.push_back({r, (r + j * 7) % n, 1.0 + static_cast<double>(r + j)});
    }
  }
  return Matrix<double>::from_triples<S>(n, n, std::move(t));
}

/// A 1-row query with `width` distinct lhs entries against an n-wide base.
serve::Query<S> point_query(Index n, int width, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<Triple<double>> t;
  for (int e = 0; e < width; ++e) {
    t.push_back({0, (static_cast<Index>(rng.bounded(
                         static_cast<std::uint64_t>(n) / 8)) *
                         8 +
                     e) %
                        n,
                 rng.uniform(0.5, 1.5)});
  }
  return serve::Query<S>::analytic(
      Matrix<double>::from_unique_triples(1, n, std::move(t)));
}

// --------------------------------------------------------------------------
// Async flush thread: submit/wait futures, bit-identical to sync.

template <semiring::Semiring Sr, typename Gen>
void expect_async_equals_sync(std::uint64_t seed, Gen&& entry) {
  using T = typename Sr::value_type;
  std::vector<sparse::Matrix<T>> bases;
  bases.push_back(random_matrix<Sr>(40, 40, 240, seed, entry));
  bases.push_back(random_matrix<Sr>(24, 32, 150, seed + 5, entry));
  const auto b0 = bases[0];  // value copies for the reference runs
  const auto b1 = bases[1];

  std::vector<serve::Query<Sr>> qs;
  std::vector<std::size_t> base_of;
  for (int i = 0; i < 24; ++i) {
    const auto s = seed + 10 + static_cast<std::uint64_t>(i) * 3;
    const std::size_t b = static_cast<std::size_t>(i % 2);
    const Index n = b == 0 ? 40 : 24;
    const Index c = b == 0 ? 40 : 32;
    if (i % 4 == 3) {
      qs.push_back(serve::Query<Sr>::masked(
          random_matrix<Sr>(2, n, 12, s, entry),
          random_matrix<Sr>(2, c, 16, s + 1, entry),
          {.complement = i % 8 == 7}));
    } else {
      qs.push_back(
          serve::Query<Sr>::analytic(random_matrix<Sr>(2, n, 10, s, entry)));
    }
    base_of.push_back(b);
  }

  for (const int nt : {1, 2, 8}) {
    ThreadGuard guard(nt);
    serve::Executor<Sr> ex(bases, {.max_batch_queries = 5,
                                   .async = true,
                                   .flush_queue_depth = 7});
    std::vector<std::size_t> tickets;
    for (std::size_t i = 0; i < qs.size(); ++i) {
      tickets.push_back(ex.submit(static_cast<serve::TenantId>(i % 3),
                                  base_of[i], qs[i]));
    }
    for (std::size_t i = 0; i < qs.size(); ++i) {
      const auto& base = base_of[i] == 0 ? b0 : b1;
      EXPECT_EQ(ex.wait(tickets[i]), serve::run_single(base, qs[i]))
          << "threads=" << nt << " query=" << i;
    }
    const auto st = ex.stats();
    EXPECT_EQ(st.queries, qs.size());
    // Per-tenant exact counters are flush-timing invariant.
    std::uint64_t tq = 0, trows = 0;
    for (const auto t : ex.tenants()) {
      tq += ex.tenant_stats(t).queries;
      trows += ex.tenant_stats(t).rows;
    }
    EXPECT_EQ(tq, st.queries);
    EXPECT_EQ(trows, st.rows_coalesced);
    ex.shutdown();
  }
}

TEST(ExecutorAsync, ArithmeticMatchesSyncAllThreadCounts) {
  expect_async_equals_sync<semiring::PlusTimes<double>>(1001, dbl_entry);
}

TEST(ExecutorAsync, TropicalMatchesSyncAllThreadCounts) {
  expect_async_equals_sync<semiring::MinPlus<double>>(
      2002, [](util::Xoshiro256& r) { return r.uniform(0.0, 10.0); });
}

TEST(ExecutorAsync, SetSemiringMatchesSyncAllThreadCounts) {
  expect_async_equals_sync<semiring::UnionIntersect>(
      3003, [](util::Xoshiro256& r) {
        return semiring::ValueSet{static_cast<std::int64_t>(r.bounded(16)),
                                  static_cast<std::int64_t>(r.bounded(16))};
      });
}

TEST(ExecutorAsync, QueueDepthTriggerFlushesWithoutWait) {
  // Queue depth 4 with a long deadline: submitting 8 queries must resolve
  // them without anyone calling wait()/flush() — the background trigger
  // does it. poll() observes settled results without blocking.
  const auto base = uniform_base(64);
  // The interval is a fallback only: with depth 4 the trigger fires twice
  // over 8 submits, and any straggler submitted after a drain completes is
  // caught by the deadline rather than hanging the poll loop.
  serve::Executor<S> ex(base, {.async = true,
                               .flush_queue_depth = 4,
                               .flush_interval =
                                   std::chrono::milliseconds(100)});
  std::vector<std::size_t> tickets;
  for (int i = 0; i < 8; ++i) {
    tickets.push_back(ex.submit(point_query(
        64, 4, 100 + static_cast<std::uint64_t>(i))));
  }
  // Every ticket must eventually settle via the background thread alone.
  for (const auto t : tickets) {
    while (ex.poll(t) == nullptr) std::this_thread::yield();
    EXPECT_NE(ex.poll(t), nullptr);
  }
  EXPECT_EQ(ex.stats().queries, 8u);
}

TEST(ExecutorAsync, TimerDeadlineFlushesASingleQuery) {
  // One lone query, depth trigger unreachable: the interval deadline must
  // flush it without an explicit wait()/flush().
  const auto base = uniform_base(32);
  serve::Executor<S> ex(base, {.async = true,
                               .flush_queue_depth = 1000,
                               .flush_interval =
                                   std::chrono::milliseconds(1)});
  const auto t = ex.submit(point_query(32, 4, 7));
  while (ex.poll(t) == nullptr) std::this_thread::yield();
  EXPECT_EQ(*ex.poll(t), serve::run_single(base, point_query(32, 4, 7)));
}

TEST(ExecutorAsync, ResultLivenessAcrossDequeGrowthUnderConcurrentSubmits) {
  // The async serving loop redeems answers while new traffic lands from
  // other threads: a wait() reference must stay valid (and its value
  // unchanged) across concurrent submit()-driven deque growth.
  const Index n = 32;
  const auto base = uniform_base(n);
  serve::Executor<S> ex(base, {.async = true, .flush_queue_depth = 8});
  const auto q0 = point_query(n, 4, 11);
  const auto t0 = ex.submit(q0);
  const auto& r0 = ex.wait(t0);
  const auto snapshot = r0;  // value copy for comparison
  std::thread submitter([&ex, n] {
    for (int i = 0; i < 300; ++i) {
      ex.submit(point_query(n, 4, 1000 + static_cast<std::uint64_t>(i)));
    }
  });
  for (int i = 0; i < 100; ++i) {
    ex.submit(point_query(n, 4, 5000 + static_cast<std::uint64_t>(i)));
  }
  submitter.join();
  ex.flush();
  EXPECT_EQ(r0, snapshot);  // same storage, unmoved and unchanged
  EXPECT_EQ(&ex.wait(t0), &r0);
  EXPECT_EQ(ex.stats().queries, 401u);
}

// --------------------------------------------------------------------------
// Shutdown / drain protocol.

TEST(ExecutorAsync, ShutdownDrainsQueuedButUnflushedTickets) {
  const auto base = uniform_base(48);
  std::vector<std::size_t> tickets;
  serve::Executor<S> ex(base, {.async = true,
                               .flush_queue_depth = 1000,
                               .flush_interval = std::chrono::milliseconds(
                                   60000)});
  for (int i = 0; i < 6; ++i) {
    tickets.push_back(ex.submit(point_query(
        48, 4, 300 + static_cast<std::uint64_t>(i))));
  }
  ex.shutdown();  // default drain = true
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    EXPECT_EQ(ex.wait(tickets[i]),
              serve::run_single(base, point_query(
                  48, 4, 300 + static_cast<std::uint64_t>(i))))
        << "ticket=" << i;
  }
  EXPECT_THROW(ex.submit(point_query(48, 4, 999)), std::runtime_error);
  EXPECT_NO_THROW(ex.shutdown());  // idempotent
}

TEST(ExecutorAsync, ShutdownWithoutDrainDropsTickets) {
  const auto base = uniform_base(32);
  serve::Executor<S> ex(base, {.async = true,
                               .flush_queue_depth = 1000,
                               .flush_interval = std::chrono::milliseconds(
                                   60000)});
  const auto resolved = ex.submit(point_query(32, 4, 21));
  // Drain synchronously on this thread: wait() would leave the background
  // drain loop still sweeping, and it could legally pick up the next
  // submit before shutdown. flush() returns only once the drain is done
  // and nothing re-triggers the idle flusher afterwards.
  ex.flush();
  ASSERT_NE(ex.poll(resolved), nullptr);  // settled — must survive shutdown
  const auto dropped = ex.submit(point_query(32, 4, 22));
  ex.shutdown(false);
  EXPECT_NO_THROW((void)ex.wait(resolved));
  EXPECT_EQ(ex.poll(dropped), nullptr);
  EXPECT_THROW((void)ex.wait(dropped), std::runtime_error);
}

TEST(ExecutorAsync, DestructorDrainsWithoutExplicitShutdown) {
  const auto base = uniform_base(32);
  {
    serve::Executor<S> ex(base, {.async = true,
                                 .flush_queue_depth = 1000});
    ex.submit(point_query(32, 4, 31));
    ex.submit(point_query(32, 4, 32));
    // No wait, no flush, no shutdown: the destructor must retire the flush
    // thread and drain cleanly (ASan/TSan guard this).
  }
  SUCCEED();
}

// --------------------------------------------------------------------------
// Admission edge cases the async work makes load-bearing.

TEST(Executor, FlushOfAnEmptyQueueIsANoOp) {
  serve::Executor<S> ex(uniform_base(16));
  ex.flush();
  ex.flush();
  EXPECT_EQ(ex.stats().batches, 0u);
  EXPECT_EQ(ex.stats().queries, 0u);
  EXPECT_EQ(ex.pending(), 0u);
  // Async flavour: an idle flusher must tolerate explicit empty flushes.
  serve::Executor<S> ax(uniform_base(16), {.async = true});
  ax.flush();
  EXPECT_EQ(ax.stats().batches, 0u);
}

TEST(Executor, ZeroFlopBudgetAdmitsOneQueryPerBatch) {
  const auto base = uniform_base(32);
  serve::Executor<S> ex(base, {.max_batch_flops = 0});
  std::vector<std::size_t> tickets;
  for (int i = 0; i < 4; ++i) {
    tickets.push_back(ex.submit(point_query(
        32, 4, 400 + static_cast<std::uint64_t>(i))));
  }
  ex.flush();
  // The first query of a batch is always admitted; nothing else fits a
  // zero budget — so admission degrades to per-query, never to livelock.
  EXPECT_EQ(ex.stats().batches, 4u);
  EXPECT_EQ(ex.stats().launches_saved, 0u);
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    EXPECT_EQ(ex.wait(tickets[i]),
              serve::run_single(base, point_query(
                  32, 4, 400 + static_cast<std::uint64_t>(i))));
  }
}

TEST(Executor, ZeroTenantQuotaStillMakesProgress) {
  const auto base = uniform_base(32);
  serve::Executor<S> ex(base, {.tenant_flop_quota = 0});
  for (int i = 0; i < 3; ++i) {
    ex.submit(1, point_query(32, 4, 500 + static_cast<std::uint64_t>(i)));
    ex.submit(2, point_query(32, 4, 600 + static_cast<std::uint64_t>(i)));
  }
  ex.flush();
  EXPECT_EQ(ex.pending(), 0u);
  EXPECT_EQ(ex.stats().queries, 6u);
  EXPECT_EQ(ex.stats().batches, 6u);  // one query per batch under quota 0
  EXPECT_EQ(ex.tenant_stats(1).queries, 3u);
  EXPECT_EQ(ex.tenant_stats(2).queries, 3u);
}

TEST(Executor, TenantQuotaStopsAHeavyTenantStarvingPointLookups) {
  // Tenant 1 queues 6 heavy queries (8 lhs entries → 32 flops each against
  // the uniform base); tenant 2 queues 5 point lookups (1 entry → 4 flops
  // each, 20 total). Quota 32 admits ONE heavy query per batch but all the
  // point lookups together, so every lookup rides the first batch instead
  // of queueing behind the heavy tenant.
  const Index n = 64;
  const auto base = uniform_base(n);
  serve::Executor<S> ex(base, {.tenant_flop_quota = 32});
  std::vector<std::size_t> heavy, light;
  for (int i = 0; i < 6; ++i) {
    heavy.push_back(ex.submit(
        1, point_query(n, 8, 700 + static_cast<std::uint64_t>(i))));
  }
  for (int i = 0; i < 5; ++i) {
    light.push_back(ex.submit(
        2, point_query(n, 1, 800 + static_cast<std::uint64_t>(i))));
  }
  ex.flush();
  const auto h = ex.tenant_stats(1);
  const auto l = ex.tenant_stats(2);
  EXPECT_EQ(h.queries, 6u);
  EXPECT_EQ(h.flops, 6u * 32u);
  EXPECT_EQ(l.queries, 5u);
  EXPECT_EQ(l.flops, 5u * 4u);  // 1 entry × 4-long base rows
  EXPECT_EQ(ex.stats().batches, 6u);  // one per heavy query
  EXPECT_EQ(h.batches, 6u);
  EXPECT_EQ(l.batches, 1u);  // all lookups answered in the FIRST batch
  EXPECT_EQ(h.deferrals, 5u);  // deferred in every batch but the last
  EXPECT_EQ(l.deferrals, 0u);
  // Correctness is untouched by the quota slicing.
  for (std::size_t i = 0; i < heavy.size(); ++i) {
    EXPECT_EQ(ex.wait(heavy[i]),
              serve::run_single(base, point_query(
                  n, 8, 700 + static_cast<std::uint64_t>(i))));
  }
  for (std::size_t i = 0; i < light.size(); ++i) {
    EXPECT_EQ(ex.wait(light[i]),
              serve::run_single(base, point_query(
                  n, 1, 800 + static_cast<std::uint64_t>(i))));
  }
}

TEST(Executor, RoundRobinRotatesAcrossBatches) {
  // Quota 0 ⇒ one query per batch; the rotating cursor must alternate
  // tenants rather than exhausting the lowest id first.
  const auto base = uniform_base(32);
  serve::Executor<S> ex(base, {.tenant_flop_quota = 0});
  const auto a0 = ex.submit(1, point_query(32, 4, 41));
  const auto b0 = ex.submit(2, point_query(32, 4, 42));
  const auto a1 = ex.submit(1, point_query(32, 4, 43));
  const auto b1 = ex.submit(2, point_query(32, 4, 44));
  (void)a0;
  (void)a1;
  (void)b0;
  (void)b1;
  ex.flush();
  EXPECT_EQ(ex.stats().batches, 4u);
  // Fairness is visible in the deferral counts. Without rotation tenant 1
  // drains completely first (a0, a1, b0, b1): tenant 1 defers once and
  // tenant 2 three times. The rotating cursor alternates (a0, b0, a1, b1),
  // so tenant 1 eats a second deferral while b0 is served ahead of a1.
  EXPECT_EQ(ex.tenant_stats(1).deferrals, 2u);
  EXPECT_EQ(ex.tenant_stats(2).deferrals, 3u);
}

// --------------------------------------------------------------------------
// Multi-base submission through the executor.

TEST(Executor, MultiBaseSubmitMatchesPerBaseSingles) {
  std::vector<Matrix<double>> bases;
  bases.push_back(random_matrix<S>(32, 32, 180, 51, dbl_entry));
  bases.push_back(random_matrix<S>(20, 48, 120, 52, dbl_entry));
  const auto b0 = bases[0];
  const auto b1 = bases[1];
  serve::Executor<S> ex(bases);
  std::vector<std::size_t> tickets;
  std::vector<serve::Query<S>> qs;
  std::vector<std::size_t> base_of;
  for (int i = 0; i < 10; ++i) {
    const std::size_t b = static_cast<std::size_t>(i % 2);
    qs.push_back(serve::Query<S>::analytic(random_matrix<S>(
        2, b == 0 ? 32 : 20, 8, 60 + static_cast<std::uint64_t>(i),
        dbl_entry)));
    base_of.push_back(b);
    tickets.push_back(ex.submit(0, b, qs.back()));
  }
  ex.flush();
  EXPECT_EQ(ex.stats().kernel_launches, 1u);  // one cross-base launch
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(ex.wait(tickets[i]),
              serve::run_single(base_of[i] == 0 ? b0 : b1, qs[i]))
        << "query=" << i;
  }
  EXPECT_THROW(ex.submit(0, 2, qs.front()), std::out_of_range);
}

TEST(Executor, GustavsonTooWideBaseRejectedAtConstruction) {
  // A forced dense-scratch strategy over a base wider than the scratch cap
  // could only fail inside a flush — on the background thread in async
  // mode. The executor refuses the configuration up front instead.
  sparse::Matrix<double> wide(4, (Index{1} << 24) + 1);
  EXPECT_THROW(serve::Executor<S>(std::move(wide),
                                  {.strategy = MxmStrategy::kGustavson}),
               std::invalid_argument);
}

TEST(Executor, WaitUnknownTicketThrows) {
  serve::Executor<S> ex(uniform_base(8));
  EXPECT_THROW((void)ex.wait(0), std::out_of_range);
  EXPECT_THROW((void)ex.poll(3), std::out_of_range);
}

}  // namespace
