// Tests for the sharded serving stack (sparse/shard.hpp,
// serve/shard_map.hpp, serve/router.hpp): shard-map splitting and
// translation, the carry-seeded fold chain, and the router's
// scatter-gather — sharded execution must be BIT-identical to the
// unsharded PR 4 executor for every semiring, strategy, thread count, and
// shard count, across ragged multi-tenant batches and every shard-boundary
// edge case (straddling queries, empty shards, single-row shards,
// hypersparse DCSR shards, masks spanning cuts).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "db/planner.hpp"
#include "helpers.hpp"
#include "semiring/all.hpp"
#include "serve/router.hpp"
#include "sparse/shard.hpp"
#include "util/rng.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::sparse;
using hyperspace::testing::ThreadGuard;
using S = semiring::PlusTimes<double>;

template <semiring::Semiring Sr, typename Gen>
Matrix<typename Sr::value_type> random_matrix(Index nrows, Index ncols,
                                              int nnz, std::uint64_t seed,
                                              Gen&& entry) {
  util::Xoshiro256 rng(seed);
  std::vector<Triple<typename Sr::value_type>> t;
  for (int i = 0; i < nnz; ++i) {
    t.push_back({static_cast<Index>(rng.bounded(
                     static_cast<std::uint64_t>(nrows))),
                 static_cast<Index>(rng.bounded(
                     static_cast<std::uint64_t>(ncols))),
                 entry(rng)});
  }
  return Matrix<typename Sr::value_type>::template from_triples<Sr>(
      nrows, ncols, std::move(t));
}

double dbl_entry(util::Xoshiro256& r) { return r.uniform(-1.0, 1.0); }

/// A ragged batch exercising every query kind: unmasked, plain-masked,
/// complement-masked, empty, zero-row, 1-row, and select. Dense enough
/// lhs rows that most queries straddle every shard cut — the masked ones
/// included, so masks provably span shard boundaries.
template <semiring::Semiring Sr, typename Gen>
std::vector<serve::Query<Sr>> ragged_batch(Index n, std::uint64_t seed,
                                           Gen&& entry) {
  using Q = serve::Query<Sr>;
  std::vector<Q> qs;
  qs.push_back(Q::analytic(random_matrix<Sr>(6, n, 40, seed + 1, entry)));
  qs.push_back(Q::masked(random_matrix<Sr>(5, n, 30, seed + 2, entry),
                                random_matrix<Sr>(5, n, 60, seed + 3, entry)));
  qs.push_back(Q::masked(
      random_matrix<Sr>(4, n, 25, seed + 4, entry),
      random_matrix<Sr>(4, n, 20, seed + 5, entry), {.complement = true}));
  qs.push_back(Q::analytic(random_matrix<Sr>(2, n, 0, seed + 6, entry)));
  qs.push_back(
      Q::analytic(random_matrix<Sr>(0, n, 0, seed + 7, entry)));  // zero rows
  qs.push_back(Q::analytic(random_matrix<Sr>(1, n, 8, seed + 8, entry)));
  qs.push_back(Q::select({0, n / 2, n - 1}, n));
  return qs;
}

// --------------------------------------------------------------------------
// Shard-partition primitives.

TEST(ShardPrimitives, EvenCutsCoverAndBalance) {
  const auto cuts = even_cuts(10, 4);
  EXPECT_EQ(cuts, (std::vector<Index>{0, 3, 6, 8, 10}));
  EXPECT_EQ(even_cuts(4, 4), (std::vector<Index>{0, 1, 2, 3, 4}));
  EXPECT_EQ(even_cuts(0, 2), (std::vector<Index>{0, 0, 0}));
  EXPECT_EQ(shard_of(cuts, 0), 0u);
  EXPECT_EQ(shard_of(cuts, 2), 0u);
  EXPECT_EQ(shard_of(cuts, 3), 1u);
  EXPECT_EQ(shard_of(cuts, 9), 3u);
  EXPECT_THROW(even_cuts(4, 0), std::invalid_argument);
}

TEST(ShardPrimitives, SplitColsRebasesAndReconstructs) {
  const auto a = random_matrix<S>(12, 40, 150, 5, dbl_entry);
  const std::vector<Index> cuts{0, 7, 7, 25, 40};  // zero-width part included
  const auto parts = split_cols(a, cuts);
  ASSERT_EQ(parts.size(), 4u);
  Index total_nnz = 0;
  for (std::size_t p = 0; p < parts.size(); ++p) {
    EXPECT_EQ(parts[p].nrows(), 12);
    EXPECT_EQ(parts[p].ncols(), cuts[p + 1] - cuts[p]);
    total_nnz += parts[p].nnz();
    for (const auto& t : parts[p].to_triples()) {
      EXPECT_EQ(a.get(t.row, t.col + cuts[p]), t.val);
    }
  }
  EXPECT_EQ(total_nnz, a.nnz());
  EXPECT_EQ(parts[1].nnz(), 0);  // the zero-width part
  EXPECT_THROW(split_cols(a, std::vector<Index>{0, 41}),
               std::invalid_argument);
}

TEST(ShardMap, SplitsTranslatesAndScatters) {
  const Index n = 20;
  const auto base = random_matrix<S>(n, 16, 80, 7, dbl_entry);
  auto map = serve::ShardMap<double>::split(base, 3);
  EXPECT_EQ(map.n_shards(), 3u);
  EXPECT_EQ(map.nrows(), n);
  EXPECT_EQ(map.ncols(), 16);
  // Shard s holds global rows [cuts[s], cuts[s+1]) as local rows.
  for (std::size_t s = 0; s < 3; ++s) {
    const auto& sh = map.shard(s);
    EXPECT_EQ(sh.nrows(), map.height(s));
    EXPECT_EQ(sh.ncols(), 16);
    for (const auto& t : sh.to_triples()) {
      EXPECT_EQ(base.get(t.row + map.cuts()[s], t.col), t.val);
    }
  }
  // Scatter: sub-lhs columns rebase into shard-local row space; shards
  // without lhs support are skipped.
  std::vector<Triple<double>> lt{{0, 2, 1.5}, {0, n - 1, 2.5}};
  const auto lhs = Matrix<double>::from_unique_triples(1, n, std::move(lt));
  const auto sc = map.scatter(lhs);
  ASSERT_EQ(sc.shards.size(), 2u);  // first and last shard only
  EXPECT_EQ(sc.shards.front(), 0u);
  EXPECT_EQ(sc.shards.back(), 2u);
  EXPECT_EQ(sc.lhs.front().get(0, 2), 1.5);
  EXPECT_EQ(sc.lhs.back().get(0, n - 1 - map.cuts()[2]), 2.5);
}

// --------------------------------------------------------------------------
// The carry-seeded fold chain — the gather's determinism keystone. A
// grouped ⊕-merge of independently folded partials would differ in the
// last ulp for float ⊕; the seed chain must not.

TEST(CarryChain, SeededRunSingleContinuesTheFoldBitExactly) {
  const Index n = 64;
  // Dense-ish operands: many output positions fold ≥ 2 products from BOTH
  // sides of the cut, so any fold regrouping would show.
  const auto base = random_matrix<S>(n, 24, 900, 11, dbl_entry);
  const auto lhs = random_matrix<S>(8, n, 200, 12, dbl_entry);
  for (const Index cut : {Index{1}, n / 3, n / 2, n - 1}) {
    const std::vector<Index> cuts{0, cut, n};
    const auto shards = split_rows(base, cuts);
    const auto parts = split_cols(lhs, cuts);
    for (const auto strat : {MxmStrategy::kGustavson, MxmStrategy::kHash,
                             MxmStrategy::kSorted}) {
      for (const int nt : {1, 8}) {
        ThreadGuard guard(nt);
        serve::Query<S> q0;
        q0.lhs = parts[0];
        const auto partial = serve::run_single(shards[0], q0, strat);
        serve::Query<S> q1;
        q1.lhs = parts[1];
        q1.carry = partial;
        const auto chained = serve::run_single(shards[1], q1, strat);
        serve::Query<S> whole;
        whole.lhs = lhs;
        EXPECT_EQ(chained, serve::run_single(base, whole, strat))
            << "cut=" << cut << " strat=" << static_cast<int>(strat)
            << " threads=" << nt;
      }
    }
  }
}

TEST(CarryChain, CarryRowsAbsentFromLhsPassThrough) {
  // lhs row 0 touches only shard 0, row 1 only shard 1: each stage's
  // launch must pass the other row's carry through verbatim.
  const Index n = 8;
  const auto base = random_matrix<S>(n, 6, 30, 21, dbl_entry);
  const std::vector<Index> cuts{0, 4, 8};
  const auto shards = split_rows(base, cuts);
  const auto lhs = Matrix<double>::from_unique_triples(
      2, n, {{0, 1, 2.0}, {0, 2, 3.0}, {1, 5, 4.0}, {1, 7, 5.0}});
  const auto parts = split_cols(lhs, cuts);
  ASSERT_EQ(parts[0].nnz(), 2);
  ASSERT_EQ(parts[1].nnz(), 2);
  serve::Query<S> q0;
  q0.lhs = parts[0];
  serve::Query<S> q1;
  q1.lhs = parts[1];
  q1.carry = serve::run_single(shards[0], q0);
  serve::Query<S> whole;
  whole.lhs = lhs;
  EXPECT_EQ(serve::run_single(shards[1], q1), serve::run_single(base, whole));
}

TEST(CarryChain, MaskedChainMatchesMaskedUnsharded) {
  const Index n = 48;
  const auto base = random_matrix<S>(n, 32, 500, 31, dbl_entry);
  const auto lhs = random_matrix<S>(6, n, 120, 32, dbl_entry);
  const auto mask = random_matrix<S>(6, 32, 90, 33, dbl_entry);
  const std::vector<Index> cuts{0, n / 2, n};
  const auto shards = split_rows(base, cuts);
  const auto parts = split_cols(lhs, cuts);
  for (const bool comp : {false, true}) {
    serve::Query<S> q0;
    q0.kind = serve::QueryKind::kMtimesMasked;
    q0.lhs = parts[0];
    q0.mask = mask;
    q0.desc = {.complement = comp};
    serve::Query<S> q1 = q0;
    q1.lhs = parts[1];
    q1.carry = serve::run_single(shards[0], q0);
    serve::Query<S> whole = q0;
    whole.lhs = lhs;
    EXPECT_EQ(serve::run_single(shards[1], q1),
              serve::run_single(base, whole))
        << "complement=" << comp;
  }
}

// --------------------------------------------------------------------------
// Router ≡ unsharded executor — the acceptance sweep.

template <semiring::Semiring Sr, typename Gen>
void expect_router_equals_unsharded(Index n, std::uint64_t seed, Gen&& entry,
                                    bool async) {
  const auto base = random_matrix<Sr>(n, n, 6 * static_cast<int>(n), seed,
                                      entry);
  const auto queries = ragged_batch<Sr>(n, seed, entry);
  for (const int shards : {1, 2, 4}) {
    for (const int nt : {1, 2, 8}) {
      ThreadGuard guard(nt);
      typename serve::Router<Sr>::Config cfg;
      cfg.n_shards = shards;
      if (async) {
        cfg.executor.async = true;
        cfg.executor.flush_queue_depth = 3;
      }
      serve::Router<Sr> router(base, cfg);
      std::vector<std::size_t> tickets;
      for (std::size_t i = 0; i < queries.size(); ++i) {
        tickets.push_back(router.submit(
            static_cast<serve::TenantId>(i % 3), queries[i]));
      }
      for (std::size_t i = 0; i < queries.size(); ++i) {
        EXPECT_EQ(router.wait(tickets[i]),
                  serve::run_single(base, queries[i]))
            << "shards=" << shards << " threads=" << nt << " query=" << i
            << " async=" << async;
      }
      const auto rs = router.router_stats();
      EXPECT_EQ(rs.queries, queries.size());
      EXPECT_EQ(rs.single_shard + rs.straddling, rs.queries);
      EXPECT_EQ(rs.stage_submits, rs.queries + rs.merges);
      if (shards == 1) {
        EXPECT_EQ(rs.straddling, 0u);
        EXPECT_EQ(rs.stage_submits, rs.queries);
      }
      router.shutdown();
    }
  }
}

TEST(RouterVsUnsharded, ArithmeticAllThreadAndShardCounts) {
  expect_router_equals_unsharded<semiring::PlusTimes<double>>(
      48, 101, dbl_entry, false);
}

TEST(RouterVsUnsharded, TropicalAllThreadAndShardCounts) {
  expect_router_equals_unsharded<semiring::MinPlus<double>>(
      48, 202, [](util::Xoshiro256& r) { return r.uniform(0.0, 10.0); },
      false);
}

TEST(RouterVsUnsharded, SetSemiringAllThreadAndShardCounts) {
  expect_router_equals_unsharded<semiring::UnionIntersect>(
      40, 303,
      [](util::Xoshiro256& r) {
        return semiring::ValueSet{static_cast<std::int64_t>(r.bounded(16)),
                                  static_cast<std::int64_t>(r.bounded(16))};
      },
      false);
}

TEST(RouterVsUnsharded, AsyncExecutorsAllShardCounts) {
  expect_router_equals_unsharded<semiring::PlusTimes<double>>(
      40, 404, dbl_entry, true);
}

TEST(RouterVsUnsharded, EveryStrategyBitIdentical) {
  const Index n = 40;
  const auto base = random_matrix<S>(n, n, 240, 7, dbl_entry);
  const auto queries = ragged_batch<S>(n, 7, dbl_entry);
  for (const auto strat : {MxmStrategy::kGustavson, MxmStrategy::kHash,
                           MxmStrategy::kSorted}) {
    typename serve::Router<S>::Config cfg;
    cfg.n_shards = 3;
    cfg.executor.strategy = strat;
    serve::Router<S> router(base, cfg);
    std::vector<std::size_t> tickets;
    for (const auto& q : queries) tickets.push_back(router.submit(q));
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(router.wait(tickets[i]),
                serve::run_single(base, queries[i], strat))
          << "strategy=" << static_cast<int>(strat) << " query=" << i;
    }
  }
}

// --------------------------------------------------------------------------
// Shard-boundary edge cases.

TEST(RouterEdgeCases, StraddlingPointQueriesMergeOnce) {
  const Index n = 32;
  const auto base = random_matrix<S>(n, 24, 300, 41, dbl_entry);
  typename serve::Router<S>::Config cfg;
  cfg.cuts = {0, 16, 32};
  serve::Router<S> router(base, cfg);
  // One query entirely in shard 0, one entirely in shard 1, one straddling.
  std::vector<serve::Query<S>> qs;
  qs.push_back(serve::Query<S>::analytic(Matrix<double>::from_unique_triples(
      1, n, {{0, 3, 2.0}, {0, 11, 1.0}})));
  qs.push_back(serve::Query<S>::analytic(Matrix<double>::from_unique_triples(
      1, n, {{0, 20, 3.0}, {0, 30, 1.5}})));
  qs.push_back(serve::Query<S>::analytic(Matrix<double>::from_unique_triples(
      1, n, {{0, 15, 2.5}, {0, 16, 0.5}})));
  std::vector<std::size_t> tickets;
  for (const auto& q : qs) tickets.push_back(router.submit(q));
  router.flush();
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(*router.poll(tickets[i]), serve::run_single(base, qs[i]))
        << "query=" << i;
  }
  const auto rs = router.router_stats();
  EXPECT_EQ(rs.single_shard, 2u);
  EXPECT_EQ(rs.straddling, 1u);
  EXPECT_EQ(rs.merges, 1u);
  EXPECT_EQ(rs.stage_submits, 4u);  // 1 + 1 + 2
}

TEST(RouterEdgeCases, EmptyAndSingleRowShards) {
  const Index n = 16;
  const auto base = random_matrix<S>(n, n, 90, 51, dbl_entry);
  // Zero-height shard (cuts 4..4), single-row shards (4..5, 5..6).
  typename serve::Router<S>::Config cfg;
  cfg.cuts = {0, 4, 4, 5, 6, n};
  serve::Router<S> router(base, cfg);
  const auto queries = ragged_batch<S>(n, 52, dbl_entry);
  std::vector<std::size_t> tickets;
  for (const auto& q : queries) tickets.push_back(router.submit(q));
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(router.wait(tickets[i]), serve::run_single(base, queries[i]))
        << "query=" << i;
  }
  // The zero-height shard can never be touched.
  EXPECT_EQ(router.shard_executor(1).stats().queries, 0u);
}

TEST(RouterEdgeCases, ShardWithNoBaseEntries) {
  // Shard 1's row range holds no base entries: sub-queries routed there
  // contribute zero flops and the carry passes through unchanged.
  std::vector<Triple<double>> bt;
  for (Index r = 0; r < 8; ++r) {
    if (r < 3 || r > 5) bt.push_back({r, r % 4, 1.0 + r});
  }
  const auto base = Matrix<double>::from_unique_triples(8, 4, std::move(bt));
  typename serve::Router<S>::Config cfg;
  cfg.cuts = {0, 3, 6, 8};
  serve::Router<S> router(base, cfg);
  const auto lhs = Matrix<double>::from_unique_triples(
      2, 8, {{0, 1, 2.0}, {0, 4, 3.0}, {1, 4, 1.0}, {1, 7, 2.0}});
  const auto q = serve::Query<S>::analytic(lhs);
  const auto t = router.submit(q);
  EXPECT_EQ(router.wait(t), serve::run_single(base, q));
}

TEST(RouterEdgeCases, HypersparseDcsrShards) {
  // A hypersparse base (2^36 rows, DCSR): shards stay DCSR, scatter and
  // chain stay exact, the flat hash serves the products.
  const Index huge = Index{1} << 36;
  const auto base = Matrix<double>::from_unique_triples(
      huge, 48,
      {{5, 3, 2.0},
       {Index{1} << 20, 7, 3.0},
       {(Index{1} << 35) + 9, 3, 4.0},
       {huge - 1, 40, 5.0}});
  ASSERT_EQ(base.format(), Format::kDcsr);
  typename serve::Router<S>::Config cfg;
  cfg.n_shards = 4;
  serve::Router<S> router(base, cfg);
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(router.shard_executor(s).base().format(), Format::kDcsr);
  }
  std::vector<serve::Query<S>> qs;
  // Straddles the first and last shard; folds two products into column 3.
  qs.push_back(serve::Query<S>::analytic(Matrix<double>::from_unique_triples(
      1, huge, {{0, 5, 2.0}, {0, (Index{1} << 35) + 9, 3.0}})));
  qs.push_back(serve::Query<S>::analytic(Matrix<double>::from_unique_triples(
      1, huge, {{0, Index{1} << 20, 1.5}, {0, huge - 1, 2.5}})));
  qs.push_back(serve::Query<S>::select({5, huge - 1}, huge));
  std::vector<std::size_t> tickets;
  for (const auto& q : qs) tickets.push_back(router.submit(q));
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(router.wait(tickets[i]), serve::run_single(base, qs[i]))
        << "query=" << i;
  }
  EXPECT_GE(router.router_stats().straddling, 2u);
}

TEST(RouterEdgeCases, MaskSpanningShardBoundaries) {
  const Index n = 24;
  const auto base = random_matrix<S>(n, n, 200, 61, dbl_entry);
  typename serve::Router<S>::Config cfg;
  cfg.cuts = {0, 8, 16, n};
  serve::Router<S> router(base, cfg);
  // Straddling lhs under both mask senses; mask columns cover the full
  // output space (output columns are unsharded, so the same mask applies
  // at every stage).
  for (const bool comp : {false, true}) {
    auto q = serve::Query<S>::masked(
        random_matrix<S>(3, n, 30, 62, dbl_entry),
        random_matrix<S>(3, n, 50, 63, dbl_entry), {.complement = comp});
    const auto t = router.submit(q);
    EXPECT_EQ(router.wait(t), serve::run_single(base, q))
        << "complement=" << comp;
  }
}

// --------------------------------------------------------------------------
// The 1-shard router IS the unsharded executor path.

TEST(RouterOneShard, PassThroughMatchesExecutorStats) {
  const Index n = 32;
  const auto base = random_matrix<S>(n, n, 180, 71, dbl_entry);
  const auto queries = ragged_batch<S>(n, 71, dbl_entry);

  serve::Executor<S> ex(base);
  std::vector<std::size_t> etickets;
  for (const auto& q : queries) etickets.push_back(ex.submit(q));
  ex.flush();

  serve::Router<S> router(base, {});
  std::vector<std::size_t> rtickets;
  for (const auto& q : queries) rtickets.push_back(router.submit(q));
  router.flush();

  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(router.wait(rtickets[i]), ex.wait(etickets[i]));
  }
  // Same serving accounting, launch for launch: nothing was duplicated,
  // re-split, or merged on the 1-shard path.
  const auto a = ex.stats();
  const auto b = router.stats();
  EXPECT_EQ(b.queries, a.queries);
  EXPECT_EQ(b.batches, a.batches);
  EXPECT_EQ(b.kernel_launches, a.kernel_launches);
  EXPECT_EQ(b.launches_saved, a.launches_saved);
  EXPECT_EQ(b.rows_coalesced, a.rows_coalesced);
  EXPECT_EQ(b.flops_kept, a.flops_kept);
  EXPECT_EQ(b.flops_skipped, a.flops_skipped);
  EXPECT_EQ(router.router_stats().merges, 0u);
}

TEST(Router, ShardedFlopAccountingPartitionsUnsharded) {
  // The flop totals across shard executors must equal the unsharded
  // executor's exactly — each product is counted in exactly one stage,
  // carry seeding adds none, and (since flops_kept counts unmasked
  // products too) the partition is independent of how masked and unmasked
  // sub-queries happened to share batches.
  const Index n = 40;
  const auto base = random_matrix<S>(n, n, 260, 81, dbl_entry);
  const auto queries = ragged_batch<S>(n, 81, dbl_entry);
  serve::Executor<S> ex(base);
  for (const auto& q : queries) ex.submit(q);
  ex.flush();
  serve::Router<S> router(base, {.n_shards = 4});
  for (const auto& q : queries) router.submit(q);
  router.flush();
  EXPECT_EQ(router.stats().flops_kept, ex.stats().flops_kept);
  EXPECT_EQ(router.stats().flops_skipped, ex.stats().flops_skipped);
}

TEST(Router, TenantStatsAggregateAcrossShards) {
  const Index n = 24;
  const auto base = random_matrix<S>(n, n, 150, 91, dbl_entry);
  serve::Router<S> router(base, {.n_shards = 2});
  const auto q1 = serve::Query<S>::analytic(Matrix<double>::from_unique_triples(
      2, n, {{0, 2, 1.0}, {0, 20, 2.0}, {1, 5, 3.0}}));  // straddles the cut
  const auto q2 = serve::Query<S>::select({1}, n);        // single shard
  router.submit(1, q1);
  router.submit(2, q2);
  router.flush();
  (void)router.wait(0);
  (void)router.wait(1);
  router.flush();
  const auto t1 = router.tenant_stats(1);
  const auto t2 = router.tenant_stats(2);
  EXPECT_EQ(t1.queries, 2u);  // one sub-query per touched shard
  EXPECT_EQ(t2.queries, 1u);
  EXPECT_EQ(router.tenants(), (std::vector<serve::TenantId>{1, 2}));
  // Exact flops: sub-query flops partition the unsharded count.
  serve::Executor<S> ex(base);
  ex.submit(1, q1);
  ex.flush();
  EXPECT_EQ(t1.flops, ex.tenant_stats(1).flops);
}

TEST(Router, ShapeMismatchesAndUnknownTicketsThrow) {
  const auto base = random_matrix<S>(16, 16, 60, 95, dbl_entry);
  serve::Router<S> router(base, {.n_shards = 2});
  EXPECT_THROW(router.submit(serve::Query<S>::analytic(
                   random_matrix<S>(2, 8, 4, 96, dbl_entry))),
               std::invalid_argument);
  EXPECT_THROW(
      router.submit(serve::Query<S>::masked(
          random_matrix<S>(2, 16, 4, 97, dbl_entry),
          random_matrix<S>(3, 16, 4, 98, dbl_entry))),
      std::invalid_argument);
  EXPECT_THROW((void)router.wait(5), std::out_of_range);
  EXPECT_THROW((void)router.poll(5), std::out_of_range);
  router.shutdown();
  EXPECT_THROW(router.submit(serve::Query<S>::select({0}, 16)),
               std::runtime_error);
  EXPECT_NO_THROW(router.shutdown());  // idempotent
}

// --------------------------------------------------------------------------
// Array façade + planner routing over the sharded stack.

array::AssocArray<S> entity_array(const std::vector<array::Key>& rows,
                                  const std::vector<array::Key>& cols,
                                  std::uint64_t seed, int density = 60) {
  util::Xoshiro256 rng(seed);
  std::vector<array::Key> k1, k2;
  std::vector<double> v;
  for (const auto& r : rows) {
    for (const auto& c : cols) {
      if (rng.bounded(100) < static_cast<std::uint64_t>(density)) {
        k1.push_back(r);
        k2.push_back(c);
        v.push_back(rng.uniform(-1.0, 1.0));
      }
    }
  }
  return array::AssocArray<S>(k1, k2, v);
}

TEST(ArrayShard, MtimesShardedMatchesSequentialMtimes) {
  // Full density so batchability is a property of the key spaces alone.
  const auto base = entity_array({"a", "b", "c", "d", "e", "f"},
                                 {"x", "y", "z"}, 31, 100);
  std::vector<array::BatchQuery<S>> qs;
  qs.push_back({entity_array({"q0", "q1"}, {"a", "f"}, 32, 100),
                std::nullopt,
                {}});  // straddles the key cut
  qs.push_back({entity_array({"u"}, {"b", "d"}, 33, 100),
                entity_array({"u"}, {"x", "z"}, 34, 100),
                {}});
  qs.push_back({entity_array({"v", "w"}, {"a", "b", "c", "d"}, 35, 100),
                entity_array({"v"}, {"y"}, 36, 100),
                {.complement = true}});
  for (const int shards : {1, 2, 3}) {
    typename serve::Router<S>::Config cfg;
    cfg.n_shards = shards;
    serve::ServeStats st;
    serve::RouterStats rs;
    const auto out = array::mtimes_sharded(base, qs, cfg, &st, &rs);
    ASSERT_EQ(out.size(), qs.size());
    EXPECT_EQ(out[0], array::mtimes(qs[0].lhs, base)) << "shards=" << shards;
    EXPECT_EQ(out[1], array::mtimes_masked(qs[1].lhs, base, *qs[1].mask));
    EXPECT_EQ(out[2], array::mtimes_masked(qs[2].lhs, base, *qs[2].mask,
                                           {.complement = true}));
    EXPECT_EQ(rs.queries, qs.size());
  }
}

TEST(ArrayShard, UnbatchableQueryThrows) {
  const auto base = entity_array({"a", "b"}, {"x"}, 41, 100);
  array::ShardedServer<S> server(base, {.n_shards = 2});
  array::BatchQuery<S> q{entity_array({"q"}, {"a", "zzz"}, 42, 100),
                         std::nullopt,
                         {}};
  EXPECT_FALSE(server.batchable(q));
  EXPECT_THROW(server.submit(q), std::invalid_argument);
}

TEST(PlannedShardedBatch, RoutesCoalescesAndFallsBack) {
  const auto base = entity_array({"a", "b", "c", "d"}, {"x", "y", "z"}, 51,
                                 100);
  array::ShardedServer<S> server(base, {.n_shards = 2});
  std::vector<array::BatchQuery<S>> qs;
  // Batchable, straddling the key cut {a,b | c,d}.
  qs.push_back(
      {array::AssocArray<S>(std::vector<array::Key>{"q0", "q0"},
                            std::vector<array::Key>{"a", "d"},
                            std::vector<double>{1.0, 2.0}),
       std::nullopt,
       {}});
  // Batchable, single shard.
  qs.push_back(
      {array::AssocArray<S>(std::vector<array::Key>{"q1"},
                            std::vector<array::Key>{"b"},
                            std::vector<double>{3.0}),
       std::nullopt,
       {}});
  // Fallback: col keys reach outside the base's row key space.
  qs.push_back(
      {array::AssocArray<S>(std::vector<array::Key>{"q2", "q2"},
                            std::vector<array::Key>{"b", "extra"},
                            std::vector<double>{1.0, 2.0}),
       std::nullopt,
       {}});
  // Annihilated by §IV.
  qs.push_back(
      {array::AssocArray<S>({"q3"}, {"nowhere"}, {1.0}), std::nullopt, {}});
  // Annihilated by §V-B: empty plain-sense mask.
  qs.push_back({entity_array({"q4"}, {"a"}, 56, 100), array::AssocArray<S>(),
                {}});

  db::PlanStats ps;
  serve::ServeStats ss;
  const auto rs = db::planned_sharded_batch(base, server, qs, &ps, &ss);
  ASSERT_EQ(rs.size(), qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    const auto want =
        qs[i].mask ? db::planned_mtimes_masked(qs[i].lhs, base, *qs[i].mask,
                                               qs[i].desc)
                   : db::planned_mtimes(qs[i].lhs, base);
    EXPECT_EQ(rs[i], want) << "query=" << i;
  }
  EXPECT_EQ(ps.batches, 1);
  EXPECT_EQ(ps.queries_batched, 2);
  EXPECT_EQ(ps.queries_fallback, 1);
  EXPECT_EQ(ps.products_skipped, 2);
  // Shard-aware accounting: q0 straddles both shards, q1 stays on one —
  // 3 sub-queries instead of a 2 × 2 broadcast.
  EXPECT_EQ(ps.queries_straddling, 1);
  EXPECT_EQ(ps.queries_single_shard, 1);
  EXPECT_EQ(ps.shard_subqueries, 3);
  EXPECT_EQ(ss.queries, 3u);  // sub-query granularity
  // Key-space mismatch between server and base is rejected.
  const auto other = entity_array({"p"}, {"x"}, 57, 100);
  EXPECT_THROW(db::planned_sharded_batch(other, server, qs, &ps),
               std::invalid_argument);
}

TEST(Router, ShutdownDrainsChains) {
  const Index n = 24;
  const auto base = random_matrix<S>(n, n, 140, 99, dbl_entry);
  std::vector<serve::Query<S>> qs;
  for (int i = 0; i < 5; ++i) {
    qs.push_back(serve::Query<S>::analytic(random_matrix<S>(
        1, n, 6, 100 + static_cast<std::uint64_t>(i), dbl_entry)));
  }
  serve::Router<S> router(base, {.executor = {.async = true,
                                              .flush_queue_depth = 1000},
                                 .n_shards = 2});
  std::vector<std::size_t> tickets;
  for (const auto& q : qs) tickets.push_back(router.submit(q));
  router.shutdown();  // default drain resolves every chain
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(router.wait(tickets[i]), serve::run_single(base, qs[i]))
        << "query=" << i;
  }
}

}  // namespace
