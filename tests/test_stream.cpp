// Tests for the hierarchical hypersparse streaming accumulator.

#include <gtest/gtest.h>

#include <map>
#include <utility>

#include "semiring/all.hpp"
#include "sparse/delta.hpp"
#include "sparse/stream.hpp"
#include "util/generators.hpp"
#include "util/rng.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::sparse;
using S = semiring::PlusTimes<double>;

TEST(Stream, InsertAndSnapshot) {
  StreamingMatrix<S> sm(10, 10, /*buffer_capacity=*/4);
  sm.insert(1, 1, 2.0);
  sm.insert(2, 3, 5.0);
  const auto m = sm.snapshot();
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_EQ(m.get(1, 1), 2.0);
}

TEST(Stream, DuplicatesCombineWithSemiring) {
  StreamingMatrix<S> sm(10, 10, 2);  // tiny buffer: forces cascades
  for (int i = 0; i < 10; ++i) sm.insert(5, 5, 1.0);
  EXPECT_EQ(sm.snapshot().get(5, 5), 10.0);
  EXPECT_EQ(sm.get(5, 5), 10.0);
}

TEST(Stream, MinPlusKeepsMinimum) {
  using MP = semiring::MinPlus<double>;
  StreamingMatrix<MP> sm(4, 4, 2);
  sm.insert(0, 1, 7.0);
  sm.insert(0, 1, 3.0);
  sm.insert(0, 1, 9.0);
  EXPECT_EQ(sm.snapshot().get(0, 1), 3.0);
}

TEST(Stream, LayersCascadeGeometrically) {
  StreamingMatrix<S> sm(1 << 20, 1 << 20, /*buffer=*/16, /*fanout=*/4);
  util::Xoshiro256 rng(3);
  for (int i = 0; i < 4096; ++i) {
    sm.insert(static_cast<Index>(rng.bounded(1 << 20)),
              static_cast<Index>(rng.bounded(1 << 20)), 1.0);
  }
  // With geometric layering the layer count stays logarithmic.
  EXPECT_LE(sm.n_layers(), 8u);
  EXPECT_EQ(sm.pending_updates(), 4096u);
}

TEST(Stream, SnapshotMatchesBatchBuild) {
  // The streaming path must agree exactly with a one-shot batch build.
  const auto edges = util::erdos_renyi_edges(256, 5000, 17);
  StreamingMatrix<S> sm(256, 256, 64);
  std::vector<Triple<double>> batch;
  for (const auto& e : edges) {
    sm.insert(e.src, e.dst, e.weight);
    batch.push_back({e.src, e.dst, e.weight});
  }
  const auto streamed = sm.snapshot();
  const auto built = Matrix<double>::from_triples<S>(256, 256, batch);
  ASSERT_EQ(streamed.nnz(), built.nnz());
  const auto ts = streamed.to_triples();
  const auto tb = built.to_triples();
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_EQ(ts[i].row, tb[i].row);
    EXPECT_EQ(ts[i].col, tb[i].col);
    EXPECT_NEAR(ts[i].val, tb[i].val, 1e-9);
  }
}

TEST(Stream, GetAcrossLayers) {
  StreamingMatrix<S> sm(100, 100, 2);
  sm.insert(7, 7, 1.0);   // will cascade to a layer
  sm.insert(8, 8, 1.0);
  sm.insert(7, 7, 2.0);   // lands in a different layer / buffer
  sm.insert(9, 9, 1.0);
  EXPECT_EQ(sm.get(7, 7), 3.0);
  EXPECT_EQ(sm.get(8, 8), 1.0);
  EXPECT_EQ(sm.get(50, 50), std::nullopt);
}

TEST(Stream, CompactFoldsToOneLayer) {
  StreamingMatrix<S> sm(64, 64, 2);
  for (int i = 0; i < 100; ++i) sm.insert(i % 64, (i * 3) % 64, 1.0);
  const auto before = sm.snapshot();
  sm.compact();
  EXPECT_LE(sm.n_layers(), 1u);
  EXPECT_EQ(sm.snapshot(), before);
}

TEST(Stream, HypersparseKeySpace) {
  // The headline use case: streaming into a 2^50-keyed space.
  const Index huge = Index{1} << 50;
  StreamingMatrix<S> sm(huge, huge, 128);
  util::Xoshiro256 rng(23);
  for (int i = 0; i < 2000; ++i) {
    sm.insert(static_cast<Index>(rng.bounded(std::uint64_t{1} << 50)),
              static_cast<Index>(rng.bounded(std::uint64_t{1} << 50)), 1.0);
  }
  const auto m = sm.snapshot();
  EXPECT_EQ(m.format(), Format::kDcsr);
  EXPECT_LE(m.nnz(), 2000);
  EXPECT_GT(m.nnz(), 1900);  // few collisions at this key space
}

TEST(Stream, EmptySnapshot) {
  StreamingMatrix<S> sm(8, 8);
  EXPECT_EQ(sm.snapshot().nnz(), 0);
  EXPECT_EQ(sm.pending_updates(), 0u);
  sm.compact();
  EXPECT_EQ(sm.snapshot().nnz(), 0);
}

// ---- last-wins / tombstone semantics -------------------------------------
//
// The delta log of sparse/delta.hpp streams DeltaSlot cells through this
// accumulator under the LastWins semiring, whose ⊕ is non-commutative
// (a ⊕ b = b). These tests pin the ordering contract the cascade must keep
// for that to be correct: every fold combines older ⊕ newer with older on
// the LEFT — across the buffer, across cascade levels, and across
// get/snapshot/compact.

using Slot = DeltaSlot<double>;
using LW = LastWins<double>;
using Op = Slot::Op;

Slot assign_slot(double v) { return {v, Op::kAssign}; }
Slot erase_slot() { return {0.0, Op::kErase}; }

TEST(Stream, LastWinsKeepsNewestWithinBuffer) {
  StreamingMatrix<LW> sm(8, 8, /*buffer_capacity=*/64);
  sm.insert(1, 1, assign_slot(1.0));
  sm.insert(1, 1, assign_slot(2.0));
  sm.insert(1, 1, assign_slot(3.0));
  const auto got = sm.get(1, 1);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->op, Op::kAssign);
  EXPECT_EQ(got->val, 3.0);
}

TEST(Stream, LastWinsKeepsNewestAcrossCascades) {
  // buffer=2 forces a cascade every other insert, so consecutive writes to
  // the same key land in DIFFERENT layers — the fold across layers (newest
  // is the buffer, oldest is the deepest layer) must still resolve to the
  // last write.
  StreamingMatrix<LW> sm(16, 16, /*buffer_capacity=*/2, /*fanout=*/2);
  for (int i = 1; i <= 9; ++i) {
    sm.insert(3, 4, assign_slot(static_cast<double>(i)));
    const auto got = sm.get(3, 4);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->val, static_cast<double>(i)) << "after write " << i;
  }
  EXPECT_EQ(sm.snapshot().get(3, 4)->val, 9.0);
}

TEST(Stream, TombstoneOverwritesAndIsOverwritten) {
  StreamingMatrix<LW> sm(8, 8, 2, 2);
  sm.insert(2, 2, assign_slot(5.0));
  sm.insert(2, 2, erase_slot());  // delete wins over the older assign
  ASSERT_TRUE(sm.get(2, 2).has_value());
  EXPECT_EQ(sm.get(2, 2)->op, Op::kErase);
  sm.insert(2, 2, assign_slot(7.0));  // resurrect: assign wins over erase
  EXPECT_EQ(sm.get(2, 2)->op, Op::kAssign);
  EXPECT_EQ(sm.get(2, 2)->val, 7.0);
}

TEST(Stream, CompactPreservesLastWins) {
  StreamingMatrix<LW> sm(32, 32, 2, 2);
  sm.insert(1, 1, assign_slot(1.0));
  sm.insert(1, 1, assign_slot(2.0));
  sm.insert(9, 9, erase_slot());
  sm.insert(1, 1, erase_slot());
  sm.insert(9, 9, assign_slot(4.0));
  const auto before = sm.snapshot();
  sm.compact();
  EXPECT_LE(sm.n_layers(), 1u);
  EXPECT_EQ(sm.snapshot(), before);
  EXPECT_EQ(sm.get(1, 1)->op, Op::kErase);
  EXPECT_EQ(sm.get(9, 9)->val, 4.0);
}

TEST(Stream, LastWinsRandomAgainstMapReference) {
  // Random assign/erase traffic with a tiny buffer (maximal cascading);
  // get/snapshot/compact must all agree with a plain map holding the last
  // operation per key.
  StreamingMatrix<LW> sm(64, 64, 4, 2);
  std::map<std::pair<Index, Index>, Slot> ref;
  util::Xoshiro256 rng(99);
  for (int i = 0; i < 2000; ++i) {
    const auto r = static_cast<Index>(rng.bounded(64));
    const auto c = static_cast<Index>(rng.bounded(64));
    const Slot s = rng.bounded(4) == 0
                       ? erase_slot()
                       : assign_slot(static_cast<double>(i));
    sm.insert(r, c, s);
    ref[{r, c}] = s;
    if (i % 500 == 499) sm.compact();  // interleave compactions
  }
  const auto snap = sm.snapshot();
  ASSERT_EQ(snap.nnz(), static_cast<Index>(ref.size()));
  for (const auto& [key, want] : ref) {
    const auto got = sm.get(key.first, key.second);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->op, want.op);
    EXPECT_EQ(got->val, want.val);
    EXPECT_EQ(*snap.get(key.first, key.second), want);
  }
}

}  // namespace
