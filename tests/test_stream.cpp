// Tests for the hierarchical hypersparse streaming accumulator.

#include <gtest/gtest.h>

#include "semiring/all.hpp"
#include "sparse/stream.hpp"
#include "util/generators.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::sparse;
using S = semiring::PlusTimes<double>;

TEST(Stream, InsertAndSnapshot) {
  StreamingMatrix<S> sm(10, 10, /*buffer_capacity=*/4);
  sm.insert(1, 1, 2.0);
  sm.insert(2, 3, 5.0);
  const auto m = sm.snapshot();
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_EQ(m.get(1, 1), 2.0);
}

TEST(Stream, DuplicatesCombineWithSemiring) {
  StreamingMatrix<S> sm(10, 10, 2);  // tiny buffer: forces cascades
  for (int i = 0; i < 10; ++i) sm.insert(5, 5, 1.0);
  EXPECT_EQ(sm.snapshot().get(5, 5), 10.0);
  EXPECT_EQ(sm.get(5, 5), 10.0);
}

TEST(Stream, MinPlusKeepsMinimum) {
  using MP = semiring::MinPlus<double>;
  StreamingMatrix<MP> sm(4, 4, 2);
  sm.insert(0, 1, 7.0);
  sm.insert(0, 1, 3.0);
  sm.insert(0, 1, 9.0);
  EXPECT_EQ(sm.snapshot().get(0, 1), 3.0);
}

TEST(Stream, LayersCascadeGeometrically) {
  StreamingMatrix<S> sm(1 << 20, 1 << 20, /*buffer=*/16, /*fanout=*/4);
  util::Xoshiro256 rng(3);
  for (int i = 0; i < 4096; ++i) {
    sm.insert(static_cast<Index>(rng.bounded(1 << 20)),
              static_cast<Index>(rng.bounded(1 << 20)), 1.0);
  }
  // With geometric layering the layer count stays logarithmic.
  EXPECT_LE(sm.n_layers(), 8u);
  EXPECT_EQ(sm.pending_updates(), 4096u);
}

TEST(Stream, SnapshotMatchesBatchBuild) {
  // The streaming path must agree exactly with a one-shot batch build.
  const auto edges = util::erdos_renyi_edges(256, 5000, 17);
  StreamingMatrix<S> sm(256, 256, 64);
  std::vector<Triple<double>> batch;
  for (const auto& e : edges) {
    sm.insert(e.src, e.dst, e.weight);
    batch.push_back({e.src, e.dst, e.weight});
  }
  const auto streamed = sm.snapshot();
  const auto built = Matrix<double>::from_triples<S>(256, 256, batch);
  ASSERT_EQ(streamed.nnz(), built.nnz());
  const auto ts = streamed.to_triples();
  const auto tb = built.to_triples();
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_EQ(ts[i].row, tb[i].row);
    EXPECT_EQ(ts[i].col, tb[i].col);
    EXPECT_NEAR(ts[i].val, tb[i].val, 1e-9);
  }
}

TEST(Stream, GetAcrossLayers) {
  StreamingMatrix<S> sm(100, 100, 2);
  sm.insert(7, 7, 1.0);   // will cascade to a layer
  sm.insert(8, 8, 1.0);
  sm.insert(7, 7, 2.0);   // lands in a different layer / buffer
  sm.insert(9, 9, 1.0);
  EXPECT_EQ(sm.get(7, 7), 3.0);
  EXPECT_EQ(sm.get(8, 8), 1.0);
  EXPECT_EQ(sm.get(50, 50), std::nullopt);
}

TEST(Stream, CompactFoldsToOneLayer) {
  StreamingMatrix<S> sm(64, 64, 2);
  for (int i = 0; i < 100; ++i) sm.insert(i % 64, (i * 3) % 64, 1.0);
  const auto before = sm.snapshot();
  sm.compact();
  EXPECT_LE(sm.n_layers(), 1u);
  EXPECT_EQ(sm.snapshot(), before);
}

TEST(Stream, HypersparseKeySpace) {
  // The headline use case: streaming into a 2^50-keyed space.
  const Index huge = Index{1} << 50;
  StreamingMatrix<S> sm(huge, huge, 128);
  util::Xoshiro256 rng(23);
  for (int i = 0; i < 2000; ++i) {
    sm.insert(static_cast<Index>(rng.bounded(std::uint64_t{1} << 50)),
              static_cast<Index>(rng.bounded(std::uint64_t{1} << 50)), 1.0);
  }
  const auto m = sm.snapshot();
  EXPECT_EQ(m.format(), Format::kDcsr);
  EXPECT_LE(m.nnz(), 2000);
  EXPECT_GT(m.nnz(), 1900);  // few collisions at this key space
}

TEST(Stream, EmptySnapshot) {
  StreamingMatrix<S> sm(8, 8);
  EXPECT_EQ(sm.snapshot().nnz(), 0);
  EXPECT_EQ(sm.pending_updates(), 0u);
  sm.compact();
  EXPECT_EQ(sm.snapshot().nnz(), 0);
}

}  // namespace
