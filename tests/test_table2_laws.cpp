// Property tests for the Table II algebraic laws of associative arrays:
// commutativity, associativity, distributivity, transpose-of-product, and
// the identity rows (A ⊕ 0 = A, A ⊗ 1 = A, A ⊗ 0 = 0, A I = A, A 0 = 0).
// Swept over random arrays and multiple semirings with TEST_P.

#include <gtest/gtest.h>

#include <cmath>

#include "array/assoc_array.hpp"
#include "semiring/all.hpp"
#include "util/rng.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::array;

// Integer-valued random arrays so +.× laws hold exactly in floating point.
template <semiring::Semiring S>
AssocArray<S> random_array(std::uint64_t seed, int n_entries = 25) {
  util::Xoshiro256 rng(seed);
  std::vector<Key> k1, k2;
  std::vector<typename S::value_type> v;
  const char* row_names[] = {"a", "b", "c", "d", "e", "f"};
  const char* col_names[] = {"u", "v", "w", "x", "y", "z"};
  for (int i = 0; i < n_entries; ++i) {
    k1.emplace_back(row_names[rng.bounded(6)]);
    k2.emplace_back(col_names[rng.bounded(6)]);
    v.push_back(static_cast<double>(1 + rng.bounded(5)));
  }
  return AssocArray<S>(k1, k2, v);
}

class Table2Laws : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Table2Laws, AddCommutes) {
  using S = semiring::PlusTimes<double>;
  const auto a = random_array<S>(GetParam());
  const auto b = random_array<S>(GetParam() + 100);
  EXPECT_EQ(add(a, b), add(b, a));
}

TEST_P(Table2Laws, MultCommutes) {
  using S = semiring::PlusTimes<double>;
  const auto a = random_array<S>(GetParam());
  const auto b = random_array<S>(GetParam() + 100);
  EXPECT_EQ(mult(a, b), mult(b, a));
}

TEST_P(Table2Laws, AddAssociates) {
  using S = semiring::PlusTimes<double>;
  const auto a = random_array<S>(GetParam());
  const auto b = random_array<S>(GetParam() + 1);
  const auto c = random_array<S>(GetParam() + 2);
  EXPECT_EQ(add(add(a, b), c), add(a, add(b, c)));
}

TEST_P(Table2Laws, MultAssociates) {
  using S = semiring::PlusTimes<double>;
  const auto a = random_array<S>(GetParam());
  const auto b = random_array<S>(GetParam() + 1);
  const auto c = random_array<S>(GetParam() + 2);
  EXPECT_EQ(mult(mult(a, b), c), mult(a, mult(b, c)));
}

TEST_P(Table2Laws, MtimesAssociates) {
  using S = semiring::PlusTimes<double>;
  const auto a = random_array<S>(GetParam(), 12);
  const auto b = random_array<S>(GetParam() + 1, 12);
  const auto c = random_array<S>(GetParam() + 2, 12);
  EXPECT_EQ(mtimes(mtimes(a, b), c), mtimes(a, mtimes(b, c)));
}

TEST_P(Table2Laws, ElementwiseDistributivity) {
  // A ⊗ (B ⊕ C) = (A ⊗ B) ⊕ (A ⊗ C)
  using S = semiring::PlusTimes<double>;
  const auto a = random_array<S>(GetParam());
  const auto b = random_array<S>(GetParam() + 1);
  const auto c = random_array<S>(GetParam() + 2);
  EXPECT_EQ(mult(a, add(b, c)), add(mult(a, b), mult(a, c)));
}

TEST_P(Table2Laws, ArrayDistributivity) {
  // A(B ⊕ C) = (AB) ⊕ (AC)
  using S = semiring::PlusTimes<double>;
  const auto a = random_array<S>(GetParam(), 12);
  const auto b = random_array<S>(GetParam() + 1, 12);
  const auto c = random_array<S>(GetParam() + 2, 12);
  EXPECT_EQ(mtimes(a, add(b, c)), add(mtimes(a, b), mtimes(a, c)));
}

TEST_P(Table2Laws, TransposeOfProduct) {
  // (AB)ᵀ = BᵀAᵀ
  using S = semiring::PlusTimes<double>;
  const auto a = random_array<S>(GetParam(), 15);
  const auto b = random_array<S>(GetParam() + 1, 15);
  EXPECT_EQ(mtimes(a, b).transpose(),
            mtimes(b.transpose(), a.transpose()));
}

TEST_P(Table2Laws, MaxPlusLawsHoldToo) {
  using S = semiring::MaxPlus<double>;
  const auto a = random_array<S>(GetParam());
  const auto b = random_array<S>(GetParam() + 1);
  const auto c = random_array<S>(GetParam() + 2);
  EXPECT_EQ(add(a, b), add(b, a));
  EXPECT_EQ(mult(a, add(b, c)), add(mult(a, b), mult(a, c)));
  EXPECT_EQ(mtimes(a, add(b, c)), add(mtimes(a, b), mtimes(a, c)));
}

TEST_P(Table2Laws, MinPlusLawsHoldToo) {
  using S = semiring::MinPlus<double>;
  const auto a = random_array<S>(GetParam(), 15);
  const auto b = random_array<S>(GetParam() + 1, 15);
  const auto c = random_array<S>(GetParam() + 2, 15);
  EXPECT_EQ(mtimes(a, add(b, c)), add(mtimes(a, b), mtimes(a, c)));
  EXPECT_EQ(mtimes(mtimes(a, b), c), mtimes(a, mtimes(b, c)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Table2Laws,
                         ::testing::Values(7, 17, 27, 37, 47, 57));

TEST(Table2Identities, AddZeroIsIdentity) {
  using S = semiring::PlusTimes<double>;
  const auto a = random_array<S>(5);
  const AssocArray<S> zero;  // the empty array is 0
  EXPECT_EQ(add(a, zero), a);
}

TEST(Table2Identities, MultZeroAnnihilates) {
  using S = semiring::PlusTimes<double>;
  const auto a = random_array<S>(6);
  const AssocArray<S> zero;
  EXPECT_TRUE(mult(a, zero).empty());
}

TEST(Table2Identities, MultOnesIsIdentity) {
  using S = semiring::PlusTimes<double>;
  const auto a = random_array<S>(7);
  const auto one = AssocArray<S>::ones(a.row_keys(), a.col_keys());
  EXPECT_EQ(mult(a, one), a);
  EXPECT_EQ(mult(one, a), a);
}

TEST(Table2Identities, MtimesIdentityArray) {
  using S = semiring::PlusTimes<double>;
  const auto a = random_array<S>(8);
  EXPECT_EQ(mtimes(a, AssocArray<S>::identity(a.col_keys())), a);
  EXPECT_EQ(mtimes(AssocArray<S>::identity(a.row_keys()), a), a);
}

TEST(Table2Identities, MtimesZeroAnnihilates) {
  using S = semiring::PlusTimes<double>;
  const auto a = random_array<S>(9);
  const AssocArray<S> zero;
  EXPECT_TRUE(mtimes(a, zero).empty());
  EXPECT_TRUE(mtimes(zero, a).empty());
}

}  // namespace
