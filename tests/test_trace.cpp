// Tests for life-of-a-query tracing (serve/trace.hpp): ring wraparound,
// sampling cadence, span well-formedness (stage coverage, sorted
// timestamps, per-lane proper nesting) through the executor and the
// sharded router, and — the contract that matters most — a determinism
// sweep proving results are bit-identical with tracing off, on, and
// sampled, at 1/2/8 threads.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "helpers.hpp"
#include "semiring/all.hpp"
#include "serve/executor.hpp"
#include "serve/router.hpp"
#include "serve/trace.hpp"
#include "sparse/io.hpp"
#include "util/rng.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::sparse;
using hyperspace::testing::ThreadGuard;
namespace tr = hyperspace::serve::trace;
using S = semiring::PlusTimes<double>;

/// Every test leaves the process-wide tracer the way it found it: off.
struct TracerGuard {
  ~TracerGuard() { tr::Tracer::instance().configure({}); }
};

template <semiring::Semiring Sr, typename Gen>
Matrix<typename Sr::value_type> random_matrix(Index nrows, Index ncols,
                                              int nnz, std::uint64_t seed,
                                              Gen&& entry) {
  util::Xoshiro256 rng(seed);
  std::vector<Triple<typename Sr::value_type>> t;
  for (int i = 0; i < nnz; ++i) {
    t.push_back({static_cast<Index>(rng.bounded(
                     static_cast<std::uint64_t>(nrows))),
                 static_cast<Index>(rng.bounded(
                     static_cast<std::uint64_t>(ncols))),
                 entry(rng)});
  }
  return Matrix<typename Sr::value_type>::template from_triples<Sr>(
      nrows, ncols, std::move(t));
}

double dbl_entry(util::Xoshiro256& r) { return r.uniform(-1.0, 1.0); }

/// A small mixed workload: unmasked, masked, complement-masked, empty.
template <semiring::Semiring Sr>
std::vector<serve::Query<Sr>> workload(Index n, std::uint64_t seed) {
  using Q = serve::Query<Sr>;
  std::vector<Q> qs;
  qs.push_back(Q::analytic(random_matrix<Sr>(5, n, 30, seed + 1, dbl_entry)));
  qs.push_back(Q::masked(random_matrix<Sr>(4, n, 24, seed + 2, dbl_entry),
                         random_matrix<Sr>(4, n, 40, seed + 3, dbl_entry)));
  qs.push_back(Q::masked(random_matrix<Sr>(3, n, 18, seed + 4, dbl_entry),
                         random_matrix<Sr>(3, n, 16, seed + 5, dbl_entry),
                         {.complement = true}));
  qs.push_back(Q::analytic(random_matrix<Sr>(2, n, 0, seed + 6, dbl_entry)));
  return qs;
}

/// Per-lane proper-nesting check, mirroring tools/check_trace_json.py:
/// sweep each lane's spans in (ts asc, dur desc) order with a stack; a
/// span must start after every already-closed span on its lane ends.
void expect_properly_nested(const std::vector<tr::Span>& spans) {
  std::map<std::uint64_t, std::vector<std::uint64_t>> stacks;  // lane → ends
  for (const auto& s : spans) {
    auto& st = stacks[s.lane];
    while (!st.empty() && st.back() <= s.ts_ns) st.pop_back();
    for (const auto end : st) {
      EXPECT_LE(s.ts_ns + s.dur_ns, end)
          << "span " << tr::stage_name(s.stage) << " on lane " << s.lane
          << " overlaps an enclosing span without nesting";
    }
    st.push_back(s.ts_ns + s.dur_ns);
  }
}

std::set<tr::Stage> stages_of(const std::vector<tr::Span>& spans) {
  std::set<tr::Stage> out;
  for (const auto& s : spans) out.insert(s.stage);
  return out;
}

// ---- tracer mechanics ----------------------------------------------------

TEST(Trace, RingWraparoundKeepsNewestSpans) {
  TracerGuard guard;
  auto& t = tr::Tracer::instance();
  t.configure({.enabled = true, .sample_every = 1, .ring_capacity = 8});
  for (std::uint64_t i = 0; i < 20; ++i) {
    t.record(tr::Stage::kSubmit, i + 1, 0, /*ts_ns=*/i * 10, /*dur_ns=*/5);
  }
  EXPECT_EQ(t.recorded(), 20u);  // total appended survives the wrap
  const auto spans = t.snapshot();
  ASSERT_EQ(spans.size(), 8u);  // ring keeps only the newest capacity
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].ts_ns, (12 + i) * 10);  // the 8 newest, time-sorted
  }
}

TEST(Trace, SamplingTracesOneInN) {
  TracerGuard guard;
  auto& t = tr::Tracer::instance();
  t.configure({.enabled = true, .sample_every = 3});
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 9; ++i) ids.push_back(t.sample());
  int traced = 0;
  std::set<std::uint64_t> distinct;
  for (const auto id : ids) {
    if (id != 0) {
      ++traced;
      distinct.insert(id);
    }
  }
  EXPECT_EQ(traced, 3);  // exactly every 3rd draw
  EXPECT_EQ(distinct.size(), 3u);
  EXPECT_NE(ids[0], 0u);  // the first draw is always traced
}

TEST(Trace, DisabledTracerRecordsNothing) {
  TracerGuard guard;
  auto& t = tr::Tracer::instance();
  t.configure({.enabled = false});
  EXPECT_EQ(t.sample(), 0u);
  t.record(tr::Stage::kSubmit, 1, 0, 0, 1);
  EXPECT_EQ(t.recorded(), 0u);
  EXPECT_TRUE(t.snapshot().empty());
}

TEST(Trace, ReconfigureDropsOldSpans) {
  TracerGuard guard;
  auto& t = tr::Tracer::instance();
  t.configure({.enabled = true});
  t.record(tr::Stage::kSubmit, 1, 0, 0, 1);
  EXPECT_EQ(t.recorded(), 1u);
  t.configure({.enabled = true});
  EXPECT_EQ(t.recorded(), 0u);
  EXPECT_TRUE(t.snapshot().empty());
}

// ---- executor spans ------------------------------------------------------

TEST(Trace, ExecutorSpansAreWellFormed) {
  TracerGuard guard;
  tr::Tracer::instance().configure({.enabled = true, .sample_every = 1});
  const Index n = 48;
  const auto base = random_matrix<S>(n, n, 5 * n, 11, dbl_entry);
  serve::Executor<S> ex(base);
  const auto queries = workload<S>(n, 21);
  std::vector<std::size_t> tickets;
  for (const auto& q : queries) tickets.push_back(ex.submit(q));
  for (const auto t : tickets) ex.wait(t);

  const auto spans = tr::Tracer::instance().snapshot();
  const auto stages = stages_of(spans);
  EXPECT_TRUE(stages.count(tr::Stage::kSubmit));
  EXPECT_TRUE(stages.count(tr::Stage::kTenantQueue));
  EXPECT_TRUE(stages.count(tr::Stage::kAdmission));
  EXPECT_TRUE(stages.count(tr::Stage::kFlush));
  EXPECT_TRUE(stages.count(tr::Stage::kKernel));
  EXPECT_TRUE(stages.count(tr::Stage::kWait));

  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GE(spans[i].ts_ns, spans[i - 1].ts_ns);  // snapshot is time-sorted
  }
  for (const auto& s : spans) {
    if (s.lane >= tr::kQueryLaneBase) {
      EXPECT_NE(s.trace, 0u);  // query lanes carry a real trace id
      EXPECT_EQ(s.lane, tr::query_lane(s.trace));
    }
  }
  expect_properly_nested(spans);

  // Every submitted query was traced (sample_every = 1): one tenant-queue
  // span per query, each on its own lane.
  std::set<std::uint64_t> queue_lanes;
  for (const auto& s : spans) {
    if (s.stage == tr::Stage::kTenantQueue) queue_lanes.insert(s.lane);
  }
  EXPECT_EQ(queue_lanes.size(), queries.size());
}

TEST(Trace, ExecutorSamplingTracesSubsetOfQueries) {
  TracerGuard guard;
  tr::Tracer::instance().configure({.enabled = true, .sample_every = 3});
  const Index n = 32;
  const auto base = random_matrix<S>(n, n, 4 * n, 31, dbl_entry);
  serve::Executor<S> ex(base);
  std::vector<std::size_t> tickets;
  for (int i = 0; i < 9; ++i) {
    tickets.push_back(ex.submit(serve::Query<S>::analytic(
        random_matrix<S>(2, n, 10, 40 + i, dbl_entry))));
  }
  for (const auto t : tickets) ex.wait(t);

  std::set<std::uint64_t> traced;
  for (const auto& s : tr::Tracer::instance().snapshot()) {
    if (s.trace != 0) traced.insert(s.trace);
  }
  EXPECT_EQ(traced.size(), 3u);  // every 3rd of 9 submissions
}

// ---- router chain spans --------------------------------------------------

TEST(Trace, RouterChainSpansCoverScatterCarryGather) {
  TracerGuard guard;
  tr::Tracer::instance().configure({.enabled = true, .sample_every = 1});
  const Index n = 64;
  const auto base = random_matrix<S>(n, n, 8 * n, 51, dbl_entry);
  serve::Router<S> router(base, {.n_shards = 4});
  // A dense-ish lhs touches every shard: a 4-stage chain.
  const auto lhs = random_matrix<S>(3, n, 3 * n, 52, dbl_entry);
  const auto t = router.submit(serve::Query<S>::analytic(lhs));
  router.flush();
  (void)router.wait(t);

  const auto spans = tr::Tracer::instance().snapshot();
  const auto stages = stages_of(spans);
  EXPECT_TRUE(stages.count(tr::Stage::kScatter));
  EXPECT_TRUE(stages.count(tr::Stage::kChainCarry));
  EXPECT_TRUE(stages.count(tr::Stage::kGather));
  expect_properly_nested(spans);

  // The gather span brackets the whole chain on the query's lane: every
  // tenant-queue span of every stage nests inside it.
  const tr::Span* gather = nullptr;
  for (const auto& s : spans) {
    if (s.stage == tr::Stage::kGather) {
      EXPECT_EQ(gather, nullptr) << "one gather per chain";
      gather = &s;
    }
  }
  ASSERT_NE(gather, nullptr);
  EXPECT_EQ(gather->a0, 4u);  // touched all four shards
  std::size_t queue_spans = 0;
  std::size_t carries = 0;
  for (const auto& s : spans) {
    if (s.lane != gather->lane || &s == gather) continue;
    EXPECT_GE(s.ts_ns, gather->ts_ns);
    EXPECT_LE(s.ts_ns + s.dur_ns, gather->ts_ns + gather->dur_ns);
    if (s.stage == tr::Stage::kTenantQueue) ++queue_spans;
    if (s.stage == tr::Stage::kChainCarry) ++carries;
  }
  EXPECT_EQ(queue_spans, 4u);  // one sub-query per shard stage
  EXPECT_EQ(carries, 3u);      // stages 1..3 each carried a partial
}

TEST(Trace, RouterSamplesOncePerLogicalQuery) {
  TracerGuard guard;
  tr::Tracer::instance().configure({.enabled = true, .sample_every = 1});
  const Index n = 48;
  const auto base = random_matrix<S>(n, n, 6 * n, 61, dbl_entry);
  serve::Router<S> router(base, {.n_shards = 3});
  const auto t = router.submit(serve::Query<S>::analytic(
      random_matrix<S>(2, n, 2 * n, 62, dbl_entry)));
  router.flush();
  (void)router.wait(t);
  // All spans of the chain share ONE trace id: the shard executors must
  // not re-sample the sub-queries.
  std::set<std::uint64_t> ids;
  for (const auto& s : tr::Tracer::instance().snapshot()) {
    if (s.trace != 0) ids.insert(s.trace);
  }
  EXPECT_EQ(ids.size(), 1u);
}

// ---- Chrome JSON dump ----------------------------------------------------

TEST(Trace, ChromeJsonDumpHasAnEventPerSpan) {
  TracerGuard guard;
  tr::Tracer::instance().configure({.enabled = true, .sample_every = 1});
  const Index n = 32;
  const auto base = random_matrix<S>(n, n, 4 * n, 71, dbl_entry);
  serve::Executor<S> ex(base);
  const auto t = ex.submit(serve::Query<S>::analytic(
      random_matrix<S>(2, n, 12, 72, dbl_entry)));
  ex.wait(t);
  const auto spans = tr::Tracer::instance().snapshot();
  ASSERT_FALSE(spans.empty());
  std::ostringstream os;
  tr::Tracer::instance().write_chrome_json(os);
  const std::string json = os.str();
  std::size_t events = 0;
  for (std::size_t p = json.find("\"ph\":\"X\""); p != std::string::npos;
       p = json.find("\"ph\":\"X\"", p + 1)) {
    ++events;
  }
  EXPECT_EQ(events, spans.size());
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"engine\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"query\""), std::string::npos);
}

// ---- determinism: tracing never changes an answer ------------------------

TEST(Trace, ResultsBitIdenticalAcrossTracingModesAndThreadCounts) {
  TracerGuard guard;
  const Index n = 64;
  const auto base = random_matrix<S>(n, n, 7 * n, 81, dbl_entry);
  const auto queries = workload<S>(n, 82);

  // Reference: telemetry fully off, single-threaded.
  tr::Tracer::instance().configure({});
  util::metrics::set_enabled(false);
  std::vector<Matrix<double>> ref_exec;
  std::vector<Matrix<double>> ref_routed;
  {
    ThreadGuard tg(1);
    serve::Executor<S> ex(base);
    std::vector<std::size_t> tk;
    for (const auto& q : queries) tk.push_back(ex.submit(q));
    for (const auto t : tk) ref_exec.push_back(ex.wait(t));
    serve::Router<S> router(base, {.n_shards = 4});
    tk.clear();
    for (const auto& q : queries) tk.push_back(router.submit(q));
    router.flush();
    for (const auto t : tk) ref_routed.push_back(router.wait(t));
  }

  struct Mode {
    const char* name;
    bool metrics_on;
    bool trace_on;
    std::uint64_t sample_every;
  };
  const Mode modes[] = {{"off", false, false, 1},
                        {"full", true, true, 1},
                        {"sampled", true, true, 3}};
  for (const auto& mode : modes) {
    for (const int nt : {1, 2, 8}) {
      ThreadGuard tg(nt);
      util::metrics::set_enabled(mode.metrics_on);
      tr::Tracer::instance().configure(
          {.enabled = mode.trace_on, .sample_every = mode.sample_every});
      serve::Executor<S> ex(base);
      std::vector<std::size_t> tk;
      for (const auto& q : queries) tk.push_back(ex.submit(q));
      for (std::size_t i = 0; i < tk.size(); ++i) {
        EXPECT_EQ(ex.wait(tk[i]), ref_exec[i])
            << "mode=" << mode.name << " threads=" << nt << " query=" << i;
      }
      serve::Router<S> router(base, {.n_shards = 4});
      tk.clear();
      for (const auto& q : queries) tk.push_back(router.submit(q));
      router.flush();
      for (std::size_t i = 0; i < tk.size(); ++i) {
        EXPECT_EQ(router.wait(tk[i]), ref_routed[i])
            << "mode=" << mode.name << " threads=" << nt << " query=" << i;
      }
    }
  }
  util::metrics::set_enabled(true);  // restore the process default
}

}  // namespace
