// Unit tests for transpose, monoid reductions, apply/select/prune, and the
// zero-norm ||·||₀ of Table II.

#include <gtest/gtest.h>

#include "semiring/all.hpp"
#include "sparse/apply.hpp"
#include "sparse/io.hpp"
#include "sparse/mxm.hpp"
#include "sparse/reduce.hpp"
#include "sparse/transpose.hpp"
#include "util/generators.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::sparse;
using S = semiring::PlusTimes<double>;

Matrix<double> sample() {
  return make_matrix<S>(3, 4, {{0, 1, 2.0}, {0, 3, -1.0}, {2, 0, 5.0}});
}

TEST(Transpose, SwapsIndices) {
  const auto t = transpose(sample());
  EXPECT_EQ(t.nrows(), 4);
  EXPECT_EQ(t.ncols(), 3);
  EXPECT_EQ(t.get(1, 0), 2.0);
  EXPECT_EQ(t.get(3, 0), -1.0);
  EXPECT_EQ(t.get(0, 2), 5.0);
}

TEST(Transpose, Involution) {
  const auto a = sample();
  EXPECT_EQ(transpose(transpose(a)), a);
}

TEST(Transpose, HypersparsePreserved) {
  const Index huge = Index{1} << 44;
  const auto a = Matrix<double>::from_unique_triples(
      huge, huge, {{Index{1} << 43, 2, 1.0}});
  const auto t = transpose(a);
  EXPECT_EQ(t.get(2, Index{1} << 43), 1.0);
  EXPECT_EQ(t.format(), Format::kDcsr);
}

TEST(ReduceRows, SumsPerRow) {
  using Add = semiring::AddMonoidOf<S>;
  const auto r = reduce_rows<Add>(sample());
  EXPECT_EQ(r.nrows(), 3);
  EXPECT_EQ(r.ncols(), 1);
  EXPECT_EQ(r.get(0, 0), 1.0);
  EXPECT_EQ(r.get(1, 0), std::nullopt);  // empty row stays empty
  EXPECT_EQ(r.get(2, 0), 5.0);
}

TEST(ReduceCols, SumsPerColumn) {
  using Add = semiring::AddMonoidOf<S>;
  const auto c = reduce_cols<Add>(sample());
  EXPECT_EQ(c.nrows(), 1);
  EXPECT_EQ(c.get(0, 0), 5.0);
  EXPECT_EQ(c.get(0, 1), 2.0);
  EXPECT_EQ(c.get(0, 2), std::nullopt);
}

TEST(ReduceAll, TotalOverMonoid) {
  using Add = semiring::AddMonoidOf<S>;
  EXPECT_DOUBLE_EQ(reduce_all<Add>(sample()), 6.0);
  using Max = semiring::AddMonoidOf<semiring::MaxPlus<double>>;
  EXPECT_DOUBLE_EQ(reduce_all<Max>(sample()), 5.0);
}

TEST(ReduceAll, EmptyGivesIdentity) {
  using Add = semiring::AddMonoidOf<S>;
  const Matrix<double> zero(4, 4);
  EXPECT_DOUBLE_EQ(reduce_all<Add>(zero), 0.0);
  using Min = semiring::AddMonoidOf<semiring::MinPlus<double>>;
  EXPECT_EQ(reduce_all<Min>(zero),
            std::numeric_limits<double>::infinity());
}

TEST(ReduceRows, AgreesWithMtimesOnes) {
  // §IV: A ⊕.⊗ 1 projects rows — the reduction must agree with the
  // explicit ones-vector product.
  std::vector<Triple<double>> t;
  for (const auto& e : util::erdos_renyi_edges(40, 200, 12)) {
    t.push_back({e.src, e.dst, e.weight});
  }
  const auto a = Matrix<double>::from_triples<S>(40, 40, std::move(t));
  const auto ones = Matrix<double>::full(40, 1, 1.0);
  const auto via_mxm = mxm<S>(a, ones);
  using Add = semiring::AddMonoidOf<S>;
  const auto via_reduce = reduce_rows<Add>(a);
  const auto ta = via_mxm.to_triples();
  const auto tb = via_reduce.to_triples();
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].row, tb[i].row);
    EXPECT_NEAR(ta[i].val, tb[i].val, 1e-12);
  }
}

TEST(Apply, TransformsValuesAndType) {
  const auto counts = apply(sample(), [](double) { return 1; });
  EXPECT_EQ(counts.nnz(), 3);
  EXPECT_EQ(counts.get(0, 1), 1);
  static_assert(std::is_same_v<decltype(counts.get(0, 0))::value_type, int>);
}

TEST(Select, FiltersByPredicate) {
  const auto pos = select(sample(), [](Index, Index, double v) { return v > 0; });
  EXPECT_EQ(pos.nnz(), 2);
  EXPECT_EQ(pos.get(0, 3), std::nullopt);
}

TEST(Select, DiagonalExtraction) {
  const auto m = make_matrix<S>(3, 3, {{0, 0, 1.0}, {0, 1, 2.0}, {2, 2, 3.0}});
  const auto diag = select(m, [](Index r, Index c, double) { return r == c; });
  EXPECT_EQ(diag.nnz(), 2);
}

TEST(Prune, DropsExplicitZeros) {
  const auto m = Matrix<double>::from_unique_triples(
      2, 2, {{0, 0, 0.0}, {1, 1, 3.0}});
  const auto p = prune<S>(m);
  EXPECT_EQ(p.nnz(), 1);
  EXPECT_EQ(p.get(1, 1), 3.0);
}

TEST(ZeroNorm, MapsNonZeroToOne) {
  const auto z = zero_norm<S>(sample());
  for (const auto& t : z.to_triples()) EXPECT_EQ(t.val, 1.0);
  EXPECT_EQ(z.nnz(), 3);
}

TEST(ZeroNorm, DropsStoredZeros) {
  const auto m = Matrix<double>::from_unique_triples(
      2, 2, {{0, 0, 0.0}, {1, 1, 3.0}});
  EXPECT_EQ(zero_norm<S>(m).nnz(), 1);
}

TEST(ZeroNorm, SemiringAwareZero) {
  // Over min.+ the "0" is +inf: a stored +inf entry vanishes, a stored 0.0
  // survives (0.0 is the ⊗-identity there, not the zero).
  using MP = semiring::MinPlus<double>;
  const auto m = Matrix<double>::from_unique_triples(
      2, 2, {{0, 0, std::numeric_limits<double>::infinity()}, {1, 1, 0.0}});
  const auto z = zero_norm<MP>(m);
  EXPECT_EQ(z.nnz(), 1);
  EXPECT_EQ(z.get(1, 1), MP::one());
}

TEST(SameSparsity, ComparesPatternsOnly) {
  const auto a = make_matrix<S>(2, 2, {{0, 0, 1.0}, {1, 1, 2.0}});
  const auto b = make_matrix<S>(2, 2, {{0, 0, 9.0}, {1, 1, -4.0}});
  const auto c = make_matrix<S>(2, 2, {{0, 1, 1.0}, {1, 1, 2.0}});
  EXPECT_TRUE(same_sparsity(a, b));
  EXPECT_FALSE(same_sparsity(a, c));
}

TEST(SameSparsity, DimensionMismatch) {
  const auto a = make_matrix<S>(2, 2, {{0, 0, 1.0}});
  const auto b = make_matrix<S>(2, 3, {{0, 0, 1.0}});
  EXPECT_FALSE(same_sparsity(a, b));
}

}  // namespace
