// Unit tests for ValueSet, the P(V) carrier of the ∪.∩ semiring.

#include <gtest/gtest.h>

#include <sstream>

#include "semiring/set_algebra.hpp"

namespace {

using hyperspace::semiring::ValueSet;

TEST(ValueSet, DefaultIsEmpty) {
  ValueSet s;
  EXPECT_TRUE(s.is_empty());
  EXPECT_FALSE(s.is_universe());
  EXPECT_EQ(s.size(), 0u);
}

TEST(ValueSet, InitializerListSortsAndDedupes) {
  ValueSet s{3, 1, 2, 3, 1};
  EXPECT_EQ(s.elements(), (std::vector<std::int64_t>{1, 2, 3}));
}

TEST(ValueSet, UniverseContainsEverything) {
  const auto u = ValueSet::all();
  EXPECT_TRUE(u.is_universe());
  EXPECT_TRUE(u.contains(0));
  EXPECT_TRUE(u.contains(-12345));
  EXPECT_TRUE(u.contains(1'000'000'000));
}

TEST(ValueSet, ContainsBinarySearch) {
  ValueSet s{10, 20, 30};
  EXPECT_TRUE(s.contains(20));
  EXPECT_FALSE(s.contains(25));
}

TEST(ValueSet, UnionMergesSorted) {
  EXPECT_EQ(set_union(ValueSet{1, 3}, ValueSet{2, 3, 4}),
            (ValueSet{1, 2, 3, 4}));
}

TEST(ValueSet, UnionWithUniverseIsUniverse) {
  EXPECT_TRUE(set_union(ValueSet{1}, ValueSet::all()).is_universe());
  EXPECT_TRUE(set_union(ValueSet::all(), ValueSet{}).is_universe());
}

TEST(ValueSet, IntersectionKeepsCommon) {
  EXPECT_EQ(set_intersection(ValueSet{1, 2, 3}, ValueSet{2, 3, 4}),
            (ValueSet{2, 3}));
}

TEST(ValueSet, IntersectionWithUniverseIsIdentity) {
  const ValueSet s{5, 7};
  EXPECT_EQ(set_intersection(s, ValueSet::all()), s);
  EXPECT_EQ(set_intersection(ValueSet::all(), s), s);
}

TEST(ValueSet, IntersectionWithEmptyAnnihilates) {
  EXPECT_TRUE(set_intersection(ValueSet{1, 2}, ValueSet{}).is_empty());
}

TEST(ValueSet, DisjointIntersectionIsEmpty) {
  EXPECT_TRUE(set_intersection(ValueSet{1, 2}, ValueSet{3, 4}).is_empty());
}

TEST(ValueSet, EqualityDistinguishesUniverseFromLargeSet) {
  EXPECT_NE(ValueSet::all(), (ValueSet{1, 2, 3}));
  EXPECT_EQ(ValueSet::all(), ValueSet::all());
}

TEST(ValueSet, StreamFormatting) {
  std::ostringstream os;
  os << ValueSet{2, 1} << " " << ValueSet::all() << " " << ValueSet{};
  EXPECT_EQ(os.str(), "{1,2} P(V) {}");
}

}  // namespace
