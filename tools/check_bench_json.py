#!/usr/bin/env python3
"""Schema sanity check for the BENCH_*.json artifacts (stdlib only).

Each artifact is a merge of per-binary Google Benchmark reports keyed by
binary name (see docs/BENCHMARKS.md):

    { "<binary>": { "context": {...}, "benchmarks": [ {row...}, ... ] } }

and every row must carry the fields the cross-PR trajectory tooling reads:
a string `name`, numeric `real_time`/`cpu_time`, a string `time_unit`, and
(optionally) a string `label` plus numeric counters. A malformed artifact
— truncated JSON, a benchmark binary that crashed mid-report, a renamed
field — should fail the bench CI job loudly instead of uploading a file
that silently breaks comparisons later.

Usage: python3 tools/check_bench_json.py BENCH_a.json [BENCH_b.json ...]
Exit status: 0 if every file conforms, 1 otherwise.

An empty top-level object ({}) is accepted with a warning: run_benches.sh
writes it when a bench binary was not built (e.g. no libbenchmark).
"""

from __future__ import annotations

import json
import numbers
import os
import sys

# Row fields that must be present, with their expected kinds.
REQUIRED_ROW_FIELDS = {
    "name": str,
    "real_time": numbers.Real,
    "cpu_time": numbers.Real,
    "time_unit": str,
}
# Optional row fields whose kind is still enforced when present.
OPTIONAL_ROW_FIELDS = {
    "label": str,
    "run_type": str,
}

# Rows the trajectory tooling depends on: per artifact (matched by file
# name), every listed prefix must match at least one benchmark row name in
# the file. A bench binary that silently dropped a suite (e.g. the mixed
# read/write grid) should fail CI here, not surface as a hole in the
# cross-PR comparison. The empty-{} escape above still applies: a file
# whose binary was never built is warned about, not failed.
REQUIRED_ROW_PREFIXES = {
    "BENCH_serve.json": [
        "bm_serve/",
        "bm_serve_executor/",
        "bm_serve_executor_async/",
        "bm_serve_multibase/",
        "bm_serve_sharded/",
        "bm_serve_mixed_rw/",
        "bm_serve_latency/",
        "bm_serve_telemetry_overhead/",
        "bm_serve_cache/",
    ],
    "BENCH_parallel.json": [
        "bm_steal_skew/",
    ],
}


def fail(path: str, message: str) -> str:
    return f"{path}: {message}"


def check_row(path: str, binary: str, i: int, row: object) -> list[str]:
    errors = []
    where = f"{binary}.benchmarks[{i}]"
    if not isinstance(row, dict):
        return [fail(path, f"{where} is not an object")]
    for field, kind in REQUIRED_ROW_FIELDS.items():
        if field not in row:
            errors.append(fail(path, f"{where} is missing '{field}'"))
        elif not isinstance(row[field], kind) or isinstance(row[field], bool):
            errors.append(
                fail(path, f"{where}.{field} is not a {kind.__name__}"))
    for field, kind in OPTIONAL_ROW_FIELDS.items():
        if field in row and not isinstance(row[field], kind):
            errors.append(
                fail(path, f"{where}.{field} is not a {kind.__name__}"))
    # Counters: any other scalar field the bench attached must be numeric
    # or string — nested structures in a row mean a corrupted merge.
    for field, value in row.items():
        if isinstance(value, (dict, list)):
            errors.append(
                fail(path, f"{where}.{field} is unexpectedly nested"))
    return errors


def check_file(path: str) -> list[str]:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        return [fail(path, f"unreadable: {e}")]
    except json.JSONDecodeError as e:
        return [fail(path, f"invalid JSON: {e}")]
    if not isinstance(doc, dict):
        return [fail(path, "top level is not an object")]
    if not doc:
        print(f"warning: {path} is empty (bench binary not built?)",
              file=sys.stderr)
        return []
    errors = []
    for binary, report in doc.items():
        if not isinstance(report, dict):
            errors.append(fail(path, f"'{binary}' report is not an object"))
            continue
        if "benchmarks" not in report:
            errors.append(fail(path, f"'{binary}' has no 'benchmarks' list"))
            continue
        rows = report["benchmarks"]
        if not isinstance(rows, list):
            errors.append(fail(path, f"'{binary}'.benchmarks is not a list"))
            continue
        if not rows:
            errors.append(fail(path, f"'{binary}'.benchmarks is empty"))
        for i, row in enumerate(rows):
            errors.extend(check_row(path, binary, i, row))
    errors.extend(check_required_rows(path, doc))
    return errors


def check_required_rows(path: str, doc: dict) -> list[str]:
    prefixes = REQUIRED_ROW_PREFIXES.get(os.path.basename(path))
    if not prefixes:
        return []
    names = []
    for report in doc.values():
        if isinstance(report, dict) and isinstance(
                report.get("benchmarks"), list):
            for row in report["benchmarks"]:
                if isinstance(row, dict) and isinstance(row.get("name"), str):
                    names.append(row["name"])
    errors = []
    for prefix in prefixes:
        if not any(n.startswith(prefix) for n in names):
            errors.append(
                fail(path, f"no benchmark row matches required prefix "
                           f"'{prefix}'"))
    return errors


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 1
    all_errors = []
    for path in argv[1:]:
        all_errors.extend(check_file(path))
    for e in all_errors:
        print(f"error: {e}", file=sys.stderr)
    checked = len(argv) - 1
    if not all_errors:
        print(f"ok: {checked} bench artifact(s) conform")
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
