#!/usr/bin/env python3
"""Markdown link checker for intra-repo links.

Scans the given markdown files (and directories, recursively) for inline
links/images `[text](target)` and reference definitions `[id]: target`,
and fails if a relative target does not exist on disk. External links
(http/https/mailto) are ignored — CI must not flake on the network — and
pure in-page anchors (`#section`) are ignored; `file.md#anchor` checks
that `file.md` exists and contains a heading matching `#anchor`.

Usage: tools/check_links.py README.md ROADMAP.md docs
Exit status: 0 when every intra-repo link resolves, 1 otherwise.
"""

import pathlib
import re
import sys

INLINE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
IMAGE = re.compile(r"\!\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
FENCE = re.compile(r"```.*?```", re.DOTALL)
EXTERNAL = ("http://", "https://", "mailto:")


def heading_anchors(md_path: pathlib.Path) -> set[str]:
    """GitHub-style anchors for every heading in the file.

    Mirrors GitHub's algorithm: markdown links collapse to their text,
    formatting markers drop, then the heading lowercases, loses everything
    but word characters / spaces / hyphens (parenthesized text KEEPS its
    words — only the punctuation goes), and spaces become hyphens.
    """
    anchors = set()
    text = FENCE.sub("", md_path.read_text(encoding="utf-8"))
    for line in text.splitlines():
        m = re.match(r"\s{0,3}#{1,6}\s+(.*)", line)
        if not m:
            continue
        title = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", m.group(1))
        title = re.sub(r"[`*_]", "", title).strip()
        anchor = re.sub(r"[^\w\s-]", "", title.lower())
        anchor = re.sub(r"\s+", "-", anchor.strip())
        anchors.add(anchor)
    return anchors


def collect_targets(md_path: pathlib.Path):
    text = md_path.read_text(encoding="utf-8")
    text = FENCE.sub("", text)  # links inside code fences are examples
    for pattern in (INLINE, IMAGE, REFDEF):
        for m in pattern.finditer(text):
            yield m.group(1)


def check_file(md_path: pathlib.Path) -> list[str]:
    errors = []
    for target in collect_targets(md_path):
        if target.startswith(EXTERNAL):
            continue
        if target.startswith("#"):
            continue  # in-page anchor; heading drift is a review concern
        path_part, _, anchor = target.partition("#")
        resolved = (md_path.parent / path_part).resolve()
        if not resolved.exists():
            errors.append(f"{md_path}: dead link -> {target}")
            continue
        if anchor and resolved.suffix == ".md":
            if anchor not in heading_anchors(resolved):
                errors.append(
                    f"{md_path}: missing anchor #{anchor} in {path_part}")
    return errors


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    files: list[pathlib.Path] = []
    for arg in argv[1:]:
        p = pathlib.Path(arg)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.md")))
        elif p.exists():
            files.append(p)
        else:
            print(f"check_links: no such file: {arg}", file=sys.stderr)
            return 1
    errors = []
    for f in files:
        errors.extend(check_file(f))
    for e in errors:
        print(e, file=sys.stderr)
    print(f"check_links: {len(files)} files, {len(errors)} dead links")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
