#!/usr/bin/env python3
"""Schema + nesting check for Chrome trace-event JSON dumps (stdlib only).

Validates the trace files written by serve::trace::Tracer::write_chrome_json
(see src/serve/trace.hpp), as emitted by examples/query_server.cpp in CI:

  - top level is an object with a non-empty "traceEvents" list;
  - every event is a complete ("ph": "X") event carrying a string "name",
    a string "cat", numeric "ts" >= 0 and "dur" >= 0, integer "pid" and
    "tid", and (optionally) an "args" object of scalars;
  - event names belong to the serving-stack span taxonomy;
  - timestamps are globally monotone (the tracer sorts before writing);
  - per (pid, tid) lane, spans are properly nested: any two spans on one
    lane are either disjoint or one contains the other. Query lanes
    (cat == "query") render the life of one query; thread lanes hold RAII
    scopes — overlap without containment on either means a broken span.

Usage: python3 tools/check_trace_json.py TRACE.json [TRACE2.json ...]
Exit status: 0 if every file conforms, 1 otherwise.
"""

from __future__ import annotations

import json
import numbers
import sys

# The span taxonomy of src/serve/trace.hpp; an unknown name means the
# emitter and this checker have drifted apart.
KNOWN_NAMES = {
    "submit",
    "tenant_queue",
    "admission",
    "flush",
    "scatter",
    "kernel",
    "chain_carry",
    "gather",
    "wait",
    "cache_probe",
}

# Floats in the file are microseconds at nanosecond resolution; allow one
# nanosecond of slack in interval comparisons for float round-off.
EPS_US = 1e-3


def fail(path: str, message: str) -> str:
    return f"{path}: {message}"


def check_event(path: str, i: int, ev: object) -> list[str]:
    where = f"traceEvents[{i}]"
    if not isinstance(ev, dict):
        return [fail(path, f"{where} is not an object")]
    errors = []
    if not isinstance(ev.get("name"), str):
        errors.append(fail(path, f"{where}.name is not a string"))
    elif ev["name"] not in KNOWN_NAMES:
        errors.append(fail(path, f"{where}.name '{ev['name']}' is not a "
                                 f"known span stage"))
    if not isinstance(ev.get("cat"), str):
        errors.append(fail(path, f"{where}.cat is not a string"))
    if ev.get("ph") != "X":
        errors.append(fail(path, f"{where}.ph is not 'X'"))
    for field in ("ts", "dur"):
        v = ev.get(field)
        if not isinstance(v, numbers.Real) or isinstance(v, bool):
            errors.append(fail(path, f"{where}.{field} is not a number"))
        elif v < 0:
            errors.append(fail(path, f"{where}.{field} is negative"))
    for field in ("pid", "tid"):
        v = ev.get(field)
        if not isinstance(v, int) or isinstance(v, bool):
            errors.append(fail(path, f"{where}.{field} is not an integer"))
    if "args" in ev:
        if not isinstance(ev["args"], dict):
            errors.append(fail(path, f"{where}.args is not an object"))
        else:
            for k, v in ev["args"].items():
                if isinstance(v, (dict, list)):
                    errors.append(
                        fail(path, f"{where}.args.{k} is unexpectedly "
                                   f"nested"))
    return errors


def check_monotone(path: str, events: list[dict]) -> list[str]:
    errors = []
    prev = None
    for i, ev in enumerate(events):
        ts = ev.get("ts")
        if not isinstance(ts, numbers.Real):
            continue  # already reported by check_event
        if prev is not None and ts < prev - EPS_US:
            errors.append(
                fail(path, f"traceEvents[{i}].ts {ts} breaks global "
                           f"monotonicity (previous {prev})"))
        prev = ts
    return errors


def check_nesting(path: str, events: list[dict]) -> list[str]:
    """Stack check per lane: events arrive sorted by (ts, -dur), so a span
    must either start after the lane's open span ends (disjoint) or end
    no later than it (nested)."""
    errors = []
    stacks: dict[tuple, list[tuple]] = {}
    for i, ev in enumerate(events):
        ts, dur = ev.get("ts"), ev.get("dur")
        if not (isinstance(ts, numbers.Real) and isinstance(dur,
                                                            numbers.Real)):
            continue
        lane = (ev.get("pid"), ev.get("tid"))
        stack = stacks.setdefault(lane, [])
        while stack and stack[-1][1] <= ts + EPS_US:
            stack.pop()
        if stack and ts + dur > stack[-1][1] + EPS_US:
            errors.append(
                fail(path, f"traceEvents[{i}] ('{ev.get('name')}' on lane "
                           f"{lane}) overlaps '{stack[-1][2]}' without "
                           f"nesting: [{ts}, {ts + dur}] vs enclosing end "
                           f"{stack[-1][1]}"))
            continue
        stack.append((ts, ts + dur, ev.get("name")))
    return errors


def check_file(path: str) -> list[str]:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        return [fail(path, f"unreadable: {e}")]
    except json.JSONDecodeError as e:
        return [fail(path, f"invalid JSON: {e}")]
    if not isinstance(doc, dict):
        return [fail(path, "top level is not an object")]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return [fail(path, "'traceEvents' is missing or not a list")]
    if not events:
        return [fail(path, "'traceEvents' is empty — tracer not enabled?")]
    errors = []
    for i, ev in enumerate(events):
        errors.extend(check_event(path, i, ev))
    errors.extend(check_monotone(path, events))
    errors.extend(check_nesting(path, events))
    return errors


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 1
    all_errors = []
    for path in argv[1:]:
        all_errors.extend(check_file(path))
    for e in all_errors:
        print(f"error: {e}", file=sys.stderr)
    if not all_errors:
        total = len(argv) - 1
        print(f"ok: {total} trace file(s) conform")
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
